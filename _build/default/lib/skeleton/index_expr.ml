module Smap = Map.Make (String)

type t = { terms : int Smap.t; const : int }

let normalize terms = Smap.filter (fun _ c -> c <> 0) terms

let const c = { terms = Smap.empty; const = c }

let var ?(coeff = 1) v = { terms = normalize (Smap.singleton v coeff); const = 0 }

let add a b =
  let terms =
    Smap.union (fun _ ca cb -> match ca + cb with 0 -> None | c -> Some c) a.terms b.terms
  in
  { terms; const = a.const + b.const }

let scale k e =
  if k = 0 then const 0
  else { terms = Smap.map (fun c -> k * c) e.terms; const = k * e.const }

let sub a b = add a (scale (-1) b)

let offset e k = { e with const = e.const + k }

let constant_part e = e.const

let coeff_of e v = match Smap.find_opt v e.terms with Some c -> c | None -> 0

let vars e = Smap.bindings e.terms |> List.map fst

let is_constant e = Smap.is_empty e.terms

let eval env e = Smap.fold (fun v c acc -> acc + (c * env v)) e.terms e.const

let range bounds e =
  Smap.fold
    (fun v c (lo, hi) ->
      let vlo, vhi = bounds v in
      if c >= 0 then (lo + (c * vlo), hi + (c * vhi)) else (lo + (c * vhi), hi + (c * vlo)))
    e.terms (e.const, e.const)

let stride_of = coeff_of

let gcd_stride e ~except =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  Smap.fold
    (fun v c acc -> if List.mem v except then acc else gcd (abs c) acc)
    e.terms 0

let equal a b = a.const = b.const && Smap.equal Int.equal a.terms b.terms

let compare a b =
  match Int.compare a.const b.const with
  | 0 -> Smap.compare Int.compare a.terms b.terms
  | c -> c

let pp ppf e =
  let terms = Smap.bindings e.terms in
  match (terms, e.const) with
  | [], c -> Format.fprintf ppf "%d" c
  | _ :: _, _ ->
      let pp_term first ppf (v, c) =
        if c = 1 then Format.fprintf ppf (if first then "%s" else " + %s") v
        else if c = -1 then Format.fprintf ppf (if first then "-%s" else " - %s") v
        else if c >= 0 then Format.fprintf ppf (if first then "%d*%s" else " + %d*%s") c v
        else Format.fprintf ppf (if first then "-%d*%s" else " - %d*%s") (abs c) v
      in
      List.iteri (fun i (v, c) -> pp_term (i = 0) ppf (v, c)) terms;
      if e.const > 0 then Format.fprintf ppf " + %d" e.const
      else if e.const < 0 then Format.fprintf ppf " - %d" (abs e.const)

let to_string e = Format.asprintf "%a" pp e
