(** Aggregate characteristics of a kernel skeleton.

    Rolls the IR up into the per-iteration operation and traffic counts
    that both the CPU roofline model and the GPU models consume.
    Branch bodies contribute in proportion to their execution
    probability. *)

type t = {
  kernel_name : string;
  trip_count : int;  (** Total innermost iterations. *)
  parallel_iterations : int;  (** Exploitable data parallelism. *)
  flops_per_iter : float;
  int_ops_per_iter : float;
  heavy_ops_per_iter : float;
      (** Long-latency operations (divide, sqrt, exp, ...). *)
  loads_per_iter : float;  (** Expected array loads per iteration. *)
  stores_per_iter : float;
  load_bytes_per_iter : float;
  store_bytes_per_iter : float;
  divergent_weight : float;
      (** Expected fraction of statements under a divergent branch —
          a [0, 1] proxy for warp-divergence exposure. *)
  has_indirect : bool;  (** Any indirect (gather/scatter) access. *)
}

val of_kernel : decls:Decl.t list -> Ir.kernel -> t
(** @raise Invalid_argument if a referenced array is undeclared (run
    {!Ir.validate} first). *)

val total_flops : t -> float

val total_bytes : t -> float
(** Loads plus stores over the whole iteration space — the traffic a
    bandwidth-bound execution must move, assuming no cache reuse. *)

val arithmetic_intensity : t -> float
(** [total_flops / total_bytes]; [infinity] for pure-compute kernels. *)

val pp : Format.formatter -> t -> unit
