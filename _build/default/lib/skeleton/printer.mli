(** Render programs in the textual skeleton format.

    The inverse of {!Parser}: [Parser.parse (Printer.to_skel p)] yields
    a program equivalent to [p] (same arrays, kernels, schedule, and
    analysis results).  Useful for exporting the bundled workloads as
    editable starting points:

    {v grophecy export-skel cfd/97K > my_variant.skel v} *)

val to_skel : Program.t -> string
(** Render a program.  Fractional operation counts and branch
    probabilities print with enough digits to round-trip. *)

val expr_to_skel : Index_expr.t -> string
(** Render one affine subscript in the format's expression syntax
    (["2*i+1"], ["y-1"], ["3"]). *)
