lib/cpu/timing.mli: Format Gpp_arch Gpp_skeleton
