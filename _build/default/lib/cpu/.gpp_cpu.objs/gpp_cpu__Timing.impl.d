lib/cpu/timing.ml: Float Format Gpp_arch Gpp_brs Gpp_skeleton Gpp_util List
