module Summary = Gpp_skeleton.Summary
module Extract = Gpp_brs.Extract
module Region = Gpp_brs.Region

type params = {
  ilp_efficiency : float;
  heavy_op_cycles : float;
  streaming_bw_fraction_override : float option;
}

let default_params =
  { ilp_efficiency = 0.80; heavy_op_cycles = 15.0; streaming_bw_fraction_override = None }

type bound = Compute_bound | Memory_bound

type breakdown = {
  kernel_name : string;
  compute_time : float;
  memory_time : float;
  overhead : float;
  time : float;
  bound : bound;
  traffic_bytes : float;
}

(* Compulsory DRAM traffic: every distinct element read must be fetched
   once and every distinct element written must be written back. *)
let unique_traffic_bytes ~decls kernel =
  let access = Extract.of_kernel ~decls kernel in
  let elem_bytes name =
    match List.find_opt (fun (d : Gpp_skeleton.Decl.t) -> d.name = name) decls with
    | Some d -> d.elem_bytes
    | None -> invalid_arg ("Cpu.Timing: undeclared array " ^ name)
  in
  let side assoc =
    List.fold_left
      (fun acc (name, region) ->
        acc + Region.covered_bytes ~elem_bytes:(elem_bytes name) region)
      0 assoc
  in
  float_of_int (side access.reads + side access.writes)

let kernel_breakdown ?(params = default_params) ~cpu ~decls kernel =
  let cpu : Gpp_arch.Cpu.t = cpu in
  let summary = Summary.of_kernel ~decls kernel in
  let total_ops =
    Summary.total_flops summary
    +. (summary.int_ops_per_iter *. float_of_int summary.trip_count)
  in
  let parallel_peak =
    Gpp_arch.Cpu.peak_gflops cpu *. 1e9 *. cpu.parallel_efficiency *. params.ilp_efficiency
  in
  let light_time = total_ops /. parallel_peak in
  (* Heavy operations stall a core for their full latency; they spread
     across cores but not across SIMD lanes. *)
  let total_heavy = summary.heavy_ops_per_iter *. float_of_int summary.trip_count in
  let heavy_time =
    total_heavy *. params.heavy_op_cycles
    /. (float_of_int cpu.cores *. cpu.clock_ghz *. 1e9 *. cpu.parallel_efficiency)
  in
  let compute_time = light_time +. heavy_time in
  let traffic_bytes = unique_traffic_bytes ~decls kernel in
  let access_bytes = Summary.total_bytes summary in
  let bw_fraction =
    match params.streaming_bw_fraction_override with
    | Some f -> f
    | None -> cpu.achieved_bw_fraction
  in
  let dram_time = traffic_bytes /. (cpu.mem_bandwidth *. bw_fraction) in
  let cache_time = access_bytes /. cpu.cache_bandwidth in
  let memory_time = Float.max dram_time cache_time in
  let overhead = cpu.parallel_overhead in
  let time = Float.max compute_time memory_time +. overhead in
  let bound = if compute_time >= memory_time then Compute_bound else Memory_bound in
  { kernel_name = kernel.name; compute_time; memory_time; overhead; time; bound; traffic_bytes }

let kernel_time ?params ~cpu ~decls kernel = (kernel_breakdown ?params ~cpu ~decls kernel).time

let program_breakdowns ?params ~cpu (program : Gpp_skeleton.Program.t) =
  List.map
    (fun (k : Gpp_skeleton.Ir.kernel) ->
      (k.name, kernel_breakdown ?params ~cpu ~decls:program.arrays k))
    program.kernels

let program_time ?params ~cpu (program : Gpp_skeleton.Program.t) =
  let by_kernel = program_breakdowns ?params ~cpu program in
  List.fold_left
    (fun acc name ->
      match List.assoc_opt name by_kernel with
      | Some b -> acc +. b.time
      | None -> acc (* unreachable for validated programs *))
    0.0
    (Gpp_skeleton.Program.flatten_schedule program)

let pp_breakdown ppf b =
  Format.fprintf ppf "%s: %a (%s-bound; compute %a, memory %a, overhead %a)" b.kernel_name
    Gpp_util.Units.pp_time b.time
    (match b.bound with Compute_bound -> "compute" | Memory_bound -> "memory")
    Gpp_util.Units.pp_time b.compute_time Gpp_util.Units.pp_time b.memory_time
    Gpp_util.Units.pp_time b.overhead
