(** Multicore CPU timing model for the OpenMP baseline.

    The evaluation's "total CPU time" is the execution time of the code
    region that was ported to the GPU (paper §IV-A), parallelized with
    OpenMP.  This model is a cache-aware roofline:

    - compute time from the kernel's operation count against the chip's
      parallel peak, derated by ILP and threading efficiencies;
    - memory time as the {e larger} of compulsory DRAM traffic (the
      array sections actually touched, from the BRS analysis — caches
      serve repeated accesses) over achieved DRAM bandwidth, and total
      access volume over cache bandwidth;
    - a fork/join overhead per parallel region.

    The kernel time is the maximum of the compute and memory terms,
    which assumes good overlap of prefetched traffic with computation —
    reasonable for the streaming-style kernels studied. *)

type params = {
  ilp_efficiency : float;
      (** Fraction of per-core peak issue achieved by scalar/SIMD code
          in practice. *)
  heavy_op_cycles : float;
      (** Latency charged per heavy operation (divide, sqrt, exp):
          unpipelined on x86 cores of the studied era, so they add
          serial cycles instead of occupying SIMD issue slots. *)
  streaming_bw_fraction_override : float option;
      (** When set, replaces the CPU record's achieved-bandwidth
          fraction (for sensitivity studies). *)
}

val default_params : params

type bound = Compute_bound | Memory_bound

type breakdown = {
  kernel_name : string;
  compute_time : float;
  memory_time : float;
  overhead : float;
  time : float;  (** [max compute memory + overhead]. *)
  bound : bound;
  traffic_bytes : float;  (** Estimated DRAM traffic. *)
}

val kernel_breakdown :
  ?params:params ->
  cpu:Gpp_arch.Cpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  breakdown

val kernel_time :
  ?params:params ->
  cpu:Gpp_arch.Cpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  float

val program_time : ?params:params -> cpu:Gpp_arch.Cpu.t -> Gpp_skeleton.Program.t -> float
(** Sum of kernel times over the fully unrolled schedule. *)

val program_breakdowns :
  ?params:params -> cpu:Gpp_arch.Cpu.t -> Gpp_skeleton.Program.t -> (string * breakdown) list
(** One breakdown per distinct kernel (keyed by kernel name), each
    computed once; schedule multiplicity is accounted for by
    {!program_time}. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
