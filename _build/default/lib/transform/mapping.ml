module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Index_expr = Gpp_skeleton.Index_expr

let innermost_parallel_var (k : Ir.kernel) =
  List.fold_left (fun acc (l : Ir.loop) -> if l.parallel then Some l.var else acc) None k.loops

let serial_multiplier (k : Ir.kernel) =
  List.fold_left (fun acc (l : Ir.loop) -> if l.parallel then acc else acc * l.extent) 1 k.loops

type stride = Bytes of int | Scattered

let find_decl decls name =
  match List.find_opt (fun (d : Decl.t) -> d.name = name) decls with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Mapping: undeclared array %s" name)

(* Row-major linearization stride of each dimension: the product of the
   extents of all inner dimensions. *)
let row_major_strides dims =
  let rec go = function
    | [] -> []
    | _ :: rest as all ->
        let inner = List.fold_left ( * ) 1 (List.tl all) in
        inner :: go rest
  in
  go dims

let ref_stride ~decls ~kernel (r : Ir.array_ref) =
  let d = find_decl decls r.array in
  let affine_step indices strides v =
    List.fold_left2
      (fun acc expr dim_stride -> acc + (Index_expr.coeff_of expr v * dim_stride))
      0 indices strides
  in
  match (d.kind, r.pattern) with
  | Decl.Sparse _, _ -> Scattered
  | Decl.Dense, Ir.Indirect { offset = []; _ } -> Scattered
  | Decl.Dense, Ir.Indirect { offset; _ } -> (
      (* Indexed-base access: adjacent threads share the (unknown) base
         and differ only in the affine offset, so the innermost strides
         of the offset govern coalescing.  A zero offset stride means
         the base itself varies per thread: scattered. *)
      match innermost_parallel_var kernel with
      | None -> Scattered
      | Some v ->
          let strides =
            (* Offsets address the trailing dimensions of the array. *)
            let all = row_major_strides d.dims in
            let skip = List.length all - List.length offset in
            List.filteri (fun i _ -> i >= skip) all
          in
          let elem_step = affine_step offset strides v in
          if elem_step = 0 then Scattered else Bytes (abs elem_step * d.elem_bytes))
  | Decl.Dense, Ir.Affine indices -> (
      match innermost_parallel_var kernel with
      | None -> Bytes 0
      | Some v -> Bytes (abs (affine_step indices (row_major_strides d.dims) v) * d.elem_bytes))

let transactions_per_access ~gpu ~elem_bytes stride =
  let gpu : Gpp_arch.Gpu.t = gpu in
  let warp = gpu.warp_size and segment = gpu.coalesce_segment in
  match stride with
  | Scattered -> float_of_int warp
  | Bytes 0 -> 1.0 (* broadcast: all lanes hit one segment *)
  | Bytes stride_bytes ->
      let span = ((warp - 1) * stride_bytes) + elem_bytes in
      let segments = (span + segment - 1) / segment in
      float_of_int (min segments warp)

let is_scattered ~gpu ~elem_bytes stride =
  let gpu : Gpp_arch.Gpu.t = gpu in
  match stride with
  | Scattered -> true
  | Bytes 0 -> false
  | Bytes stride_bytes ->
      (* Fewer than two lanes per segment: the burst degenerates into
         isolated transactions. *)
      stride_bytes * 2 > gpu.coalesce_segment && elem_bytes < stride_bytes
