(** Synthesis of kernel characteristics for one transformation.

    Given a skeleton and a transformation configuration (block size,
    thread coarsening, shared-memory tiling), produce the
    {!Gpp_model.Characteristics.t} a tuned CUDA implementation of that
    configuration would exhibit — the core of GROPHECY's "synthesize
    performance characteristics for each transformation" step. *)

type config = {
  threads_per_block : int;
  unroll : int;
      (** Thread coarsening: each thread processes this many iterations
          of the innermost parallel loop, distributed cyclically so
          coalescing is preserved. *)
  vector_width : int;
      (** Vectorized accesses (float2/float4 style): each memory
          instruction moves this many consecutive elements, shrinking
          the instruction count without changing the traffic.  Only
          legal when every access is contiguous or warp-uniform;
          {!characteristics} rejects it otherwise. *)
  shared_tiling : bool;  (** Serve stencil taps from a cooperatively
                             loaded shared-memory tile. *)
}

val scalar : threads_per_block:int -> config
(** Unroll 1, vector width 1, no tiling. *)

val label : config -> string
(** E.g. ["tpb=256 unroll=2 tiled"]. *)

val characteristics :
  gpu:Gpp_arch.Gpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  config ->
  (Gpp_model.Characteristics.t, string) result
(** [Error] when the kernel exposes no data parallelism, the
    configuration is degenerate (more coarsening than iterations), or
    tiling is requested but no tiling opportunity exists. *)
