lib/transform/synthesize.mli: Gpp_arch Gpp_model Gpp_skeleton
