lib/transform/mapping.mli: Gpp_arch Gpp_skeleton
