lib/transform/synthesize.ml: Gpp_model Gpp_skeleton List Mapping Printf String Tiling
