lib/transform/tiling.mli: Format Gpp_skeleton
