lib/transform/explore.ml: Float Gpp_model Gpp_skeleton List Printf Synthesize
