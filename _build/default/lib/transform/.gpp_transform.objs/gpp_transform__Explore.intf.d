lib/transform/explore.mli: Format Gpp_arch Gpp_model Gpp_skeleton Synthesize
