lib/transform/fusion.mli: Gpp_arch Gpp_model Gpp_skeleton Synthesize Tiling
