lib/transform/fusion.ml: Float Gpp_model Gpp_skeleton List Mapping Printf Synthesize Tiling
