lib/transform/mapping.ml: Gpp_arch Gpp_skeleton List Printf
