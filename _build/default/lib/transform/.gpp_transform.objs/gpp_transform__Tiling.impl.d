lib/transform/tiling.ml: Float Format Gpp_skeleton List
