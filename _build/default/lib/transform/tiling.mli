(** Detection of shared-memory tiling opportunities.

    A stencil-style kernel loads several elements of the same array at
    subscripts that differ only by constants (e.g. the 3x3 neighbourhood
    in HotSpot).  Such a group can be transformed to load one tile
    (plus halo) into shared memory and serve the individual taps from
    scratchpad — one of the transformations GROPHECY explores. *)

type group = {
  array : string;
  elem_bytes : int;
  taps : int;  (** Number of references sharing the base subscript. *)
  radius : int;  (** Largest constant-offset spread in any dimension,
                     halved and rounded up: the halo width. *)
  rank : int;  (** Dimensionality of the array. *)
  base_ref : Gpp_skeleton.Ir.array_ref;  (** Representative reference
                                             (for coalescing analysis). *)
}

val detect : decls:Gpp_skeleton.Decl.t list -> Gpp_skeleton.Ir.kernel -> group list
(** Groups of at least three affine load references to the same dense
    array whose subscripts differ only in constants.  Fewer than three
    taps do not amortize the barrier cost, matching GROPHECY's
    behaviour of discarding unprofitable transformations early. *)

val tile_elements : group -> threads_per_block:int -> unroll:int -> int
(** Shared-memory tile size (elements) for a block covering
    [threads_per_block * unroll] outputs: the output footprint plus a
    halo of [radius] on each side.  Multidimensional stencils tile a
    near-square region. *)

val halo_factor : group -> threads_per_block:int -> unroll:int -> float
(** [tile_elements / outputs]: the factor by which the cooperative tile
    load exceeds one load per output element. *)

val pp_group : Format.formatter -> group -> unit
