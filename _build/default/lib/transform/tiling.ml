module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Index_expr = Gpp_skeleton.Index_expr

type group = {
  array : string;
  elem_bytes : int;
  taps : int;
  radius : int;
  rank : int;
  base_ref : Ir.array_ref;
}

(* Two affine subscript lists are congruent when they differ only in
   their constant parts. *)
let congruent indices1 indices2 =
  List.length indices1 = List.length indices2
  && List.for_all2
       (fun e1 e2 ->
         Index_expr.equal (Index_expr.offset e1 (-Index_expr.constant_part e1))
           (Index_expr.offset e2 (-Index_expr.constant_part e2)))
       indices1 indices2

let detect ~decls (k : Ir.kernel) =
  let loads =
    Ir.refs k
    |> List.filter_map (fun (_, (r : Ir.array_ref)) ->
           match r.pattern with
           | Ir.Affine indices when r.access = Ir.Load -> (
               match List.find_opt (fun (d : Decl.t) -> d.name = r.array) decls with
               | Some ({ kind = Decl.Dense; _ } as d) -> Some (r, indices, d)
               | Some { kind = Decl.Sparse _; _ } | None -> None)
           | Ir.Affine _ | Ir.Indirect _ -> None)
  in
  (* Partition by (array, congruence class of subscripts). *)
  let rec partition groups = function
    | [] -> List.rev groups
    | ((r : Ir.array_ref), indices, d) :: rest ->
        let same, different =
          List.partition
            (fun ((r2 : Ir.array_ref), indices2, _) -> r2.array = r.array && congruent indices indices2)
            rest
        in
        let members = (r, indices, d) :: same in
        partition ((members, d) :: groups) different
  in
  partition [] loads
  |> List.filter_map (fun (members, (d : Decl.t)) ->
         if List.length members < 3 then None
         else begin
           (* Halo radius: half the constant-offset spread, per
              dimension, maximized over dimensions. *)
           let rank = List.length d.dims in
           let radius =
             List.init rank (fun dim ->
                 let consts =
                   List.map
                     (fun (_, indices, _) -> Index_expr.constant_part (List.nth indices dim))
                     members
                 in
                 let lo = List.fold_left min max_int consts
                 and hi = List.fold_left max min_int consts in
                 (hi - lo + 1) / 2)
             |> List.fold_left max 0
           in
           let base_ref, _, _ = List.hd members in
           Some
             {
               array = d.name;
               elem_bytes = d.elem_bytes;
               taps = List.length members;
               radius;
               rank;
               base_ref;
             }
         end)

let tile_elements g ~threads_per_block ~unroll =
  let outputs = threads_per_block * unroll in
  if g.rank <= 1 then outputs + (2 * g.radius)
  else begin
    (* Near-square 2-D tile (higher ranks treated as 2-D: the stencil
       workloads studied are at most 2-D). *)
    let side = int_of_float (Float.ceil (sqrt (float_of_int outputs))) in
    let with_halo = side + (2 * g.radius) in
    with_halo * with_halo
  end

let halo_factor g ~threads_per_block ~unroll =
  float_of_int (tile_elements g ~threads_per_block ~unroll)
  /. float_of_int (threads_per_block * unroll)

let pp_group ppf g =
  Format.fprintf ppf "%s: %d taps, radius %d, rank %d" g.array g.taps g.radius g.rank
