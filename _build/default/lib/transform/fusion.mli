(** Temporal kernel fusion for iterative stencils.

    The paper notes that "multiple invocations of the same kernel across
    several iterations can be fused together" (§IV-B, HotSpot).  Fusing
    [f] time steps into one launch trades redundant halo work for:
    - [f]x fewer kernel launches,
    - [f]x fewer global-memory round trips of the iterated array (the
      tile stays in shared memory across the fused steps), and
    - [f]x fewer loads of time-invariant side inputs.

    The cost: the shared-memory tile must carry a halo of width
    [radius * f], shrinking by [radius] per fused step — so occupancy
    drops and per-tile redundant computation grows with [f].  There is
    a sweet spot, which {!best_factor} finds by projecting each
    candidate with the analytic model.

    Applicable to programs whose schedule is a single repeated stencil
    kernel (like HotSpot); {!eligible} checks this. *)

type eligibility = {
  kernel : Gpp_skeleton.Ir.kernel;
  group : Tiling.group;  (** The stencil group carried across steps. *)
  iterations : int;  (** The Repeat count in the schedule. *)
}

val eligible : Gpp_skeleton.Program.t -> eligibility option
(** [Some _] when the program's schedule is exactly
    [Repeat (n, [Call k])] with [n >= 2] and [k] contains a
    shared-memory tiling group. *)

val fused_characteristics :
  gpu:Gpp_arch.Gpu.t ->
  decls:Gpp_skeleton.Decl.t list ->
  Gpp_skeleton.Ir.kernel ->
  config:Synthesize.config ->
  factor:int ->
  (Gpp_model.Characteristics.t, string) result
(** Characteristics of one launch executing [factor] fused time steps
    of the kernel under the given transformation configuration.
    [factor = 1] reduces to ordinary tiled synthesis.
    @raise nothing; returns [Error] for infeasible factors (halo
    exceeding the tile, shared memory overflowing the SM, non-stencil
    kernels). *)

type plan = {
  factor : int;
  launches : int;  (** Launches covering all iterations. *)
  characteristics : Gpp_model.Characteristics.t;
  launch_time : float;  (** Projected time of one fused launch. *)
  total_time : float;  (** [launches * launch_time]. *)
}

val plan :
  ?params:Gpp_model.Analytic.params ->
  ?config:Synthesize.config ->
  gpu:Gpp_arch.Gpu.t ->
  Gpp_skeleton.Program.t ->
  factor:int ->
  (plan, string) result
(** Project the whole iterative program at one fusion factor.  The
    default configuration is 256 threads per block with tiling. *)

val best_factor :
  ?params:Gpp_model.Analytic.params ->
  ?config:Synthesize.config ->
  ?factors:int list ->
  gpu:Gpp_arch.Gpu.t ->
  Gpp_skeleton.Program.t ->
  (plan list, string) result
(** Feasible plans for each candidate factor (default 1, 2, 4, 8),
    fastest first.  [Error] when the program is not eligible. *)
