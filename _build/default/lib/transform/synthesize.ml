module Ir = Gpp_skeleton.Ir
module Summary = Gpp_skeleton.Summary
module Characteristics = Gpp_model.Characteristics

type config = {
  threads_per_block : int;
  unroll : int;
  vector_width : int;
  shared_tiling : bool;
}

let scalar ~threads_per_block = { threads_per_block; unroll = 1; vector_width = 1; shared_tiling = false }

let label c =
  Printf.sprintf "tpb=%d unroll=%d%s%s" c.threads_per_block c.unroll
    (if c.vector_width > 1 then Printf.sprintf " vec=%d" c.vector_width else "")
    (if c.shared_tiling then " tiled" else "")

(* A divide/sqrt/exp runs on the SFU path at roughly a quarter of the
   FMA issue rate, so each heavy operation costs this many
   flop-equivalent issue slots. *)
let gpu_heavy_op_weight = 4.0

type traffic = {
  mutable loads : float;
  mutable stores : float;
  mutable load_trans : float;
  mutable store_trans : float;
  mutable scattered_trans : float;
}

let distinct_arrays (k : Ir.kernel) =
  Ir.refs k
  |> List.map (fun (_, (r : Ir.array_ref)) -> r.array)
  |> List.sort_uniq String.compare
  |> List.length

let characteristics ~gpu ~decls (k : Ir.kernel) cfg =
  let summary = Summary.of_kernel ~decls k in
  let elem_bytes array =
    match List.find_opt (fun (d : Gpp_skeleton.Decl.t) -> d.name = array) decls with
    | Some d -> d.elem_bytes
    | None -> 4
  in
  (* Vector accesses require every reference to be contiguous along the
     thread dimension (or warp-uniform): a float4 load of a strided or
     scattered pattern does not exist. *)
  let vectorizable () =
    Ir.fold_refs k ~init:true ~f:(fun acc ~weight:_ (r : Ir.array_ref) ->
        acc
        &&
        match Mapping.ref_stride ~decls ~kernel:k r with
        | Mapping.Bytes 0 -> true
        | Mapping.Bytes stride -> stride = elem_bytes r.array
        | Mapping.Scattered -> false)
  in
  if summary.parallel_iterations <= 1 then
    Error (Printf.sprintf "kernel %s exposes no data parallelism" k.name)
  else if cfg.unroll < 1 || cfg.unroll > summary.parallel_iterations then
    Error (Printf.sprintf "kernel %s: unroll %d out of range" k.name cfg.unroll)
  else if cfg.vector_width < 1 then
    Error (Printf.sprintf "kernel %s: vector width %d out of range" k.name cfg.vector_width)
  else if cfg.vector_width > 1 && not (vectorizable ()) then
    Error (Printf.sprintf "kernel %s: non-contiguous accesses cannot vectorize" k.name)
  else if cfg.unroll * cfg.vector_width > summary.parallel_iterations then
    Error (Printf.sprintf "kernel %s: coarsening exceeds the iteration space" k.name)
  else begin
    let groups = if cfg.shared_tiling then Tiling.detect ~decls k else [] in
    if cfg.shared_tiling && groups = [] then
      Error (Printf.sprintf "kernel %s has no shared-memory tiling opportunity" k.name)
    else begin
      let serial_mult = float_of_int (Mapping.serial_multiplier k) in
      let elements_per_thread = cfg.unroll * cfg.vector_width in
      let work_mult = float_of_int elements_per_thread *. serial_mult in
      let threads_needed =
        (summary.parallel_iterations + elements_per_thread - 1) / elements_per_thread
      in
      let grid_blocks = (threads_needed + cfg.threads_per_block - 1) / cfg.threads_per_block in
      let traffic =
        { loads = 0.0; stores = 0.0; load_trans = 0.0; store_trans = 0.0; scattered_trans = 0.0 }
      in
      Ir.fold_refs k ~init:() ~f:(fun () ~weight (r : Ir.array_ref) ->
          let stride = Mapping.ref_stride ~decls ~kernel:k r in
          let eb = elem_bytes r.array in
          let trans = Mapping.transactions_per_access ~gpu ~elem_bytes:eb stride in
          let n = weight *. work_mult in
          (* A width-w vector access is one instruction for w elements;
             the bytes it moves (and thus its transactions) scale with
             w, leaving per-element traffic unchanged. *)
          let insts = n /. float_of_int cfg.vector_width in
          if Mapping.is_scattered ~gpu ~elem_bytes:eb stride then
            traffic.scattered_trans <- traffic.scattered_trans +. (n *. trans);
          match r.access with
          | Ir.Load ->
              traffic.loads <- traffic.loads +. insts;
              traffic.load_trans <- traffic.load_trans +. (n *. trans)
          | Ir.Store ->
              traffic.stores <- traffic.stores +. insts;
              traffic.store_trans <- traffic.store_trans +. (n *. trans));
      (* Shared-memory tiling: replace each group's taps with one
         cooperative (coalesced) tile load plus halo, a barrier pair,
         and scratchpad reads that cost only issue slots. *)
      let int_ops = ref (summary.int_ops_per_iter *. work_mult) in
      let syncs = ref 0.0 in
      let shared_mem = ref 0 in
      List.iter
        (fun (g : Tiling.group) ->
          let taps = float_of_int g.taps in
          let hf =
            Tiling.halo_factor g ~threads_per_block:cfg.threads_per_block
              ~unroll:(cfg.unroll * cfg.vector_width)
          in
          let base_stride = Mapping.ref_stride ~decls ~kernel:k g.base_ref in
          let base_trans =
            Mapping.transactions_per_access ~gpu ~elem_bytes:g.elem_bytes base_stride
          in
          let body_mult = float_of_int (cfg.unroll * cfg.vector_width) in
          traffic.loads <- traffic.loads -. (taps *. work_mult) +. (hf *. body_mult);
          traffic.load_trans <-
            traffic.load_trans
            -. (taps *. base_trans *. work_mult)
            +. (hf *. base_trans *. body_mult);
          int_ops := !int_ops +. (taps *. work_mult);
          syncs := !syncs +. (2.0 *. body_mult);
          shared_mem :=
            !shared_mem
            + Tiling.tile_elements g ~threads_per_block:cfg.threads_per_block
                ~unroll:(cfg.unroll * cfg.vector_width)
              * g.elem_bytes)
        groups;
      (* Addressing arithmetic: one integer op per surviving access. *)
      int_ops := !int_ops +. traffic.loads +. traffic.stores;
      let arrays = distinct_arrays k in
      let registers =
        10 + (2 * arrays)
        + (2 * (cfg.unroll - 1))
        + (2 * (cfg.vector_width - 1))
        + (if cfg.shared_tiling then 6 else 0)
        + (if serial_mult > 1.0 then 2 else 0)
        |> min 63 |> max 8
      in
      let total_trans = traffic.load_trans +. traffic.store_trans in
      let scattered_fraction =
        if total_trans > 0.0 then traffic.scattered_trans /. total_trans else 0.0
      in
      let c =
        Characteristics.create ~config_label:(label cfg) ~registers_per_thread:registers
          ~shared_mem_per_block:!shared_mem ~int_ops_per_thread:!int_ops
          ~syncs_per_thread:!syncs
          ~divergence_factor:(1.0 +. summary.divergent_weight)
          ~scattered_fraction ~kernel_name:k.name ~grid_blocks
          ~threads_per_block:cfg.threads_per_block
          ~flops_per_thread:
            ((summary.flops_per_iter +. (gpu_heavy_op_weight *. summary.heavy_ops_per_iter))
            *. work_mult)
          ~load_insts_per_thread:traffic.loads ~store_insts_per_thread:traffic.stores
          ~load_transactions_per_warp:traffic.load_trans
          ~store_transactions_per_warp:traffic.store_trans ()
      in
      match Characteristics.validate ~gpu c with Ok () -> Ok c | Error e -> Error e
    end
  end
