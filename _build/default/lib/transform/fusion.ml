module Ir = Gpp_skeleton.Ir
module Program = Gpp_skeleton.Program
module Summary = Gpp_skeleton.Summary
module C = Gpp_model.Characteristics

type eligibility = { kernel : Ir.kernel; group : Tiling.group; iterations : int }

let eligible (program : Program.t) =
  match program.Program.schedule with
  | [ Program.Repeat (n, [ Program.Call name ]) ] when n >= 2 -> (
      match Program.find_kernel program name with
      | None -> None
      | Some kernel -> (
          match Tiling.detect ~decls:program.Program.arrays kernel with
          | [] -> None
          | groups ->
              (* The principal group: the stencil with the most taps is
                 the array iterated across time steps. *)
              let group =
                List.fold_left
                  (fun best g -> if g.Tiling.taps > best.Tiling.taps then g else best)
                  (List.hd groups) (List.tl groups)
              in
              Some { kernel; group; iterations = n }))
  | _ -> None

let ipow base exp =
  let rec go acc n = if n = 0 then acc else go (acc * base) (n - 1) in
  go 1 exp

let fused_characteristics ~gpu ~decls (k : Ir.kernel) ~config ~factor =
  if factor < 1 then Error "fusion factor must be >= 1"
  else
    match Tiling.detect ~decls k with
    | [] -> Error (Printf.sprintf "kernel %s has no stencil to fuse" k.name)
    | principal :: _ as groups ->
        let group =
          List.fold_left
            (fun best g -> if g.Tiling.taps > best.Tiling.taps then g else best)
            principal groups
        in
        let cfg = { config with Synthesize.shared_tiling = true } in
        let summary = Summary.of_kernel ~decls k in
        if summary.Summary.parallel_iterations <= 1 then
          Error (Printf.sprintf "kernel %s exposes no data parallelism" k.name)
        else begin
          let r = max 1 group.Tiling.radius in
          let rank = min group.Tiling.rank 2 in
          let outputs = cfg.Synthesize.threads_per_block * cfg.Synthesize.unroll in
          let side =
            if rank <= 1 then outputs
            else int_of_float (Float.ceil (sqrt (float_of_int outputs)))
          in
          if 2 * r * factor >= side then
            Error
              (Printf.sprintf "fusion factor %d: halo %d exceeds tile side %d" factor
                 (2 * r * factor) side)
          else begin
            let serial_mult = float_of_int (Mapping.serial_multiplier k) in
            let work_mult = float_of_int cfg.Synthesize.unroll *. serial_mult in
            let threads_needed =
              (summary.Summary.parallel_iterations + cfg.Synthesize.unroll - 1)
              / cfg.Synthesize.unroll
            in
            let grid_blocks =
              (threads_needed + cfg.Synthesize.threads_per_block - 1)
              / cfg.Synthesize.threads_per_block
            in
            (* Redundant halo computation: step j of the launch computes
               a tile shrunk by j*r on each side; averaged over steps and
               normalized by the useful output tile. *)
            let computed_elements =
              List.init factor (fun j -> ipow (side + (2 * r * (factor - 1 - j))) rank)
              |> List.fold_left ( + ) 0
            in
            let compute_factor =
              float_of_int computed_elements /. float_of_int (factor * ipow side rank)
            in
            let tile_elems = ipow (side + (2 * r * factor)) rank in
            let tile_loads_per_thread = float_of_int tile_elems /. float_of_int outputs in
            (* Non-group references: loaded/stored once per launch; the
               group's taps are served from the shared tile. *)
            let group_load_weight = float_of_int group.Tiling.taps in
            let other_loads = Float.max 0.0 (summary.Summary.loads_per_iter -. group_load_weight) in
            let loads = (other_loads *. work_mult) +. (tile_loads_per_thread *. float_of_int cfg.Synthesize.unroll) in
            let stores = summary.Summary.stores_per_iter *. work_mult in
            (* Coalescing: the cooperative tile load and the surviving
               refs stream contiguously in these stencil kernels. *)
            let base_stride = Mapping.ref_stride ~decls ~kernel:k group.Tiling.base_ref in
            let trans_per_access =
              Mapping.transactions_per_access ~gpu ~elem_bytes:group.Tiling.elem_bytes base_stride
            in
            let load_trans = loads *. trans_per_access in
            let store_trans = stores *. trans_per_access in
            let steps = float_of_int factor in
            let flops =
              (summary.Summary.flops_per_iter
              +. (4.0 *. summary.Summary.heavy_ops_per_iter))
              *. work_mult *. steps *. compute_factor
            in
            let int_ops =
              ((summary.Summary.int_ops_per_iter +. group_load_weight) *. work_mult *. steps
              *. compute_factor)
              +. loads +. stores
            in
            let syncs = 2.0 *. steps *. float_of_int cfg.Synthesize.unroll in
            let shared_mem =
              (* Double-buffered tile for multi-step fusion. *)
              tile_elems * group.Tiling.elem_bytes * (if factor > 1 then 2 else 1)
            in
            let registers =
              10 + (2 * min factor 8) + (2 * (cfg.Synthesize.unroll - 1)) + 8 |> min 63
            in
            let c =
              C.create
                ~config_label:(Printf.sprintf "%s fused=%d" (Synthesize.label cfg) factor)
                ~registers_per_thread:registers ~shared_mem_per_block:shared_mem
                ~int_ops_per_thread:int_ops ~syncs_per_thread:syncs
                ~divergence_factor:(1.0 +. summary.Summary.divergent_weight)
                ~kernel_name:(k.name ^ "_fused") ~grid_blocks
                ~threads_per_block:cfg.Synthesize.threads_per_block ~flops_per_thread:flops
                ~load_insts_per_thread:loads ~store_insts_per_thread:stores
                ~load_transactions_per_warp:load_trans ~store_transactions_per_warp:store_trans
                ()
            in
            match C.validate ~gpu c with Ok () -> Ok c | Error e -> Error e
          end
        end

type plan = {
  factor : int;
  launches : int;
  characteristics : C.t;
  launch_time : float;
  total_time : float;
}

let default_config =
  { Synthesize.threads_per_block = 256; unroll = 1; vector_width = 1; shared_tiling = true }

let plan ?params ?(config = default_config) ~gpu program ~factor =
  match eligible program with
  | None -> Error "program is not an iterated single stencil kernel"
  | Some e -> (
      match
        fused_characteristics ~gpu ~decls:program.Program.arrays e.kernel ~config ~factor
      with
      | Error e -> Error e
      | Ok characteristics -> (
          match Gpp_model.Analytic.project ?params ~gpu characteristics with
          | Error e -> Error e
          | Ok projection ->
              let launches = (e.iterations + factor - 1) / factor in
              let launch_time = projection.Gpp_model.Analytic.kernel_time in
              Ok
                {
                  factor;
                  launches;
                  characteristics;
                  launch_time;
                  total_time = float_of_int launches *. launch_time;
                }))

let best_factor ?params ?config ?(factors = [ 1; 2; 4; 8 ]) ~gpu program =
  match eligible program with
  | None -> Error "program is not an iterated single stencil kernel"
  | Some _ ->
      let plans =
        List.filter_map
          (fun factor ->
            match plan ?params ?config ~gpu program ~factor with
            | Ok p -> Some p
            | Error _ -> None)
          factors
      in
      if plans = [] then Error "no feasible fusion factor"
      else Ok (List.sort (fun a b -> Float.compare a.total_time b.total_time) plans)
