type space = {
  block_sizes : int list;
  unroll_factors : int list;
  vector_widths : int list;
  allow_tiling : bool;
}

let default_space =
  {
    block_sizes = [ 64; 128; 192; 256; 384; 512 ];
    unroll_factors = [ 1; 2; 4 ];
    vector_widths = [ 1; 2; 4 ];
    allow_tiling = true;
  }

type candidate = {
  config : Synthesize.config;
  characteristics : Gpp_model.Characteristics.t;
  projection : Gpp_model.Analytic.projection;
}

let configs_of_space space =
  List.concat_map
    (fun threads_per_block ->
      List.concat_map
        (fun unroll ->
          List.concat_map
            (fun vector_width ->
              let base =
                { Synthesize.threads_per_block; unroll; vector_width; shared_tiling = false }
              in
              if space.allow_tiling then [ base; { base with Synthesize.shared_tiling = true } ]
              else [ base ])
            space.vector_widths)
        space.unroll_factors)
    space.block_sizes

let search ?params ?(space = default_space) ~gpu ~decls kernel =
  let evaluate cfg =
    match Synthesize.characteristics ~gpu ~decls kernel cfg with
    | Error _ -> None
    | Ok characteristics -> (
        match Gpp_model.Analytic.project ?params ~gpu characteristics with
        | Error _ -> None
        | Ok projection -> Some { config = cfg; characteristics; projection })
  in
  configs_of_space space
  |> List.filter_map evaluate
  |> List.sort (fun a b ->
         Float.compare a.projection.Gpp_model.Analytic.kernel_time
           b.projection.Gpp_model.Analytic.kernel_time)

let best ?params ?space ~gpu ~decls kernel =
  match search ?params ?space ~gpu ~decls kernel with
  | [] ->
      Error
        (Printf.sprintf "kernel %s: no feasible GPU transformation found"
           kernel.Gpp_skeleton.Ir.name)
  | fastest :: _ -> Ok fastest

let pp_candidate ppf c = Gpp_model.Analytic.pp_projection ppf c.projection
