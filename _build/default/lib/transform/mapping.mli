(** Thread mapping and memory-coalescing analysis.

    GROPHECY maps the parallel loops of a skeleton onto the GPU thread
    space: the innermost parallel loop varies fastest, so consecutive
    threads execute consecutive iterations of it.  A reference's
    coalescing behaviour then follows from its subscript's stride with
    respect to that loop variable. *)

val innermost_parallel_var : Gpp_skeleton.Ir.kernel -> string option
(** The parallel loop variable mapped to adjacent threads; [None] when
    the kernel has no parallel loop. *)

val serial_multiplier : Gpp_skeleton.Ir.kernel -> int
(** Product of the non-parallel loop extents: how many times each
    thread executes the kernel body. *)

type stride = Bytes of int | Scattered
(** Distance in memory between the elements touched by adjacent
    threads.  [Scattered] covers indirect accesses and sparse arrays,
    whose per-lane targets are unrelated. *)

val ref_stride :
  decls:Gpp_skeleton.Decl.t list ->
  kernel:Gpp_skeleton.Ir.kernel ->
  Gpp_skeleton.Ir.array_ref ->
  stride
(** Stride of one reference under the standard mapping.  For an affine
    reference the per-thread element distance is the subscript
    polynomial evaluated at a unit step of the innermost parallel
    variable (accounting for row-major layout of multidimensional
    arrays). *)

val transactions_per_access :
  gpu:Gpp_arch.Gpu.t -> elem_bytes:int -> stride -> float
(** Memory transactions one warp issues to execute this access once:
    the number of distinct [coalesce_segment]-byte segments spanned by
    [warp_size] lanes at the given stride, capped at one transaction per
    lane.  [Scattered] accesses cost one transaction per lane. *)

val is_scattered : gpu:Gpp_arch.Gpu.t -> elem_bytes:int -> stride -> bool
(** Whether the access wastes most of each transaction (fewer than two
    lanes share a segment). *)
