module Program = Gpp_skeleton.Program
module Analyzer = Gpp_dataflow.Analyzer

type verdict = Port | Port_if_iterated of int | Do_not_port

type cost_center = Kernel_time | Upload | Download

type recommendation = {
  verdict : verdict;
  iterations : int;
  projected_speedup : float;
  kernel_only_speedup : float;
  limit_speedup : float;
  break_even_iterations : int option;
  dominant_cost : cost_center;
  notes : string list;
}

let sum_schedule per_kernel schedule =
  List.fold_left
    (fun acc name -> acc +. (match List.assoc_opt name per_kernel with Some t -> t | None -> 0.0))
    0.0 schedule

(* Predicted CPU and GPU-kernel times of the program rescaled to [n]
   iterations; transfers are iteration-invariant. *)
let times_at ?cpu_params (projection : Projection.t) n =
  let program = Program.with_iterations projection.Projection.program n in
  let schedule = Program.flatten_schedule program in
  let cpu_per_kernel =
    Gpp_cpu.Timing.program_breakdowns ?params:cpu_params
      ~cpu:projection.Projection.machine.Gpp_arch.Machine.cpu program
    |> List.map (fun (name, (b : Gpp_cpu.Timing.breakdown)) -> (name, b.Gpp_cpu.Timing.time))
  in
  let cpu = sum_schedule cpu_per_kernel schedule in
  let kernel = sum_schedule (Projection.per_kernel_times projection) schedule in
  (cpu, kernel)

let recommend ?cpu_params ?(iterations = 1) (projection : Projection.t) =
  if iterations < 1 then invalid_arg "Advisor.recommend: iterations must be >= 1";
  let transfer = projection.Projection.transfer_time in
  let speedup_at n =
    let cpu, kernel = times_at ?cpu_params projection n in
    cpu /. (kernel +. transfer)
  in
  let cpu_now, kernel_now = times_at ?cpu_params projection iterations in
  let projected_speedup = cpu_now /. (kernel_now +. transfer) in
  let kernel_only_speedup = cpu_now /. kernel_now in
  let cpu1, kern1 = times_at ?cpu_params projection 1 in
  let cpu2, kern2 = times_at ?cpu_params projection 2 in
  let iterative = cpu2 > cpu1 in
  let limit_speedup =
    let d_cpu = cpu2 -. cpu1 and d_kern = kern2 -. kern1 in
    if d_cpu > 0.0 && d_kern > 0.0 then d_cpu /. d_kern else cpu1 /. kern1
  in
  (* Break-even: the speedup is monotone in the iteration count for
     programs whose per-iteration CPU/kernel ratio beats the limit, so
     a doubling scan followed by a binary refinement finds the first
     winning count. *)
  let break_even_iterations =
    if limit_speedup <= 1.0 then None
    else if speedup_at 1 > 1.0 then Some 1
    else if not iterative then None (* nothing amortizes: the speedup is flat *)
    else begin
      let cap = 1 lsl 20 in
      let rec double n = if n >= cap || speedup_at n > 1.0 then n else double (2 * n) in
      let hi = double 2 in
      if speedup_at hi <= 1.0 then None
      else begin
        let rec refine lo hi =
          (* invariant: speedup lo <= 1 < speedup hi *)
          if hi - lo <= 1 then hi
          else
            let mid = (lo + hi) / 2 in
            if speedup_at mid > 1.0 then refine lo mid else refine mid hi
        in
        Some (refine (hi / 2) hi)
      end
    end
  in
  let verdict =
    if projected_speedup > 1.0 then Port
    else
      match break_even_iterations with
      | Some n -> Port_if_iterated n
      | None -> Do_not_port
  in
  let upload =
    List.fold_left
      (fun acc (pt : Projection.priced_transfer) ->
        if pt.Projection.transfer.Analyzer.direction = Analyzer.To_device then
          acc +. pt.Projection.time
        else acc)
      0.0 projection.Projection.transfers
  in
  let download = transfer -. upload in
  let dominant_cost =
    if kernel_now >= upload && kernel_now >= download then Kernel_time
    else if upload >= download then Upload
    else Download
  in
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  if verdict = Do_not_port then begin
    if limit_speedup <= 1.0 then
      note
        "the projected kernel itself is no faster than the CPU baseline; no amount of transfer \
         amortization can recover a win"
    else if not iterative then
      note
        "the kernel wins (%.1fx) but the program runs it once per data set, so the transfer is \
         never amortized; restructure to keep data on the GPU across more work"
        kernel_only_speedup
  end
  else begin
    (match dominant_cost with
    | Kernel_time -> ()
    | Upload | Download ->
        note "data transfer dominates the projected time; keeping data resident across more \
              work per offload is the main lever");
    (* Latency-dominated transfers suggest batching (ablation: one alpha
       per extra array). *)
    let latency_bound =
      List.filter
        (fun (pt : Projection.priced_transfer) ->
          let model =
            match pt.Projection.transfer.Analyzer.direction with
            | Analyzer.To_device -> projection.Projection.h2d
            | Analyzer.From_device -> projection.Projection.d2h
          in
          Gpp_pcie.Model.latency model >= 0.3 *. pt.Projection.time)
        projection.Projection.transfers
    in
    if List.length latency_bound >= 2 then
      note "%d transfers are latency-dominated; batching the small arrays into one transfer \
            would save most of their setup cost"
        (List.length latency_bound);
    let overlap = Overlap.best_chunks projection in
    if overlap.Overlap.saving > 0.15 *. overlap.Overlap.serial_total then
      note "chunked streams could hide up to %.0f%% of the projected total (%d chunks)"
        (100.0 *. overlap.Overlap.saving /. overlap.Overlap.serial_total)
        overlap.Overlap.chunks;
    if projected_speedup > 1.0 && kernel_only_speedup > 2.0 *. projected_speedup then
      note "transfer overhead consumes more than half of the kernel-level gain (%.1fx -> %.2fx)"
        kernel_only_speedup projected_speedup
  end;
  {
    verdict;
    iterations;
    projected_speedup;
    kernel_only_speedup;
    limit_speedup;
    break_even_iterations;
    dominant_cost;
    notes = List.rev !notes;
  }

let verdict_name = function
  | Port -> "port it"
  | Port_if_iterated n -> Printf.sprintf "port it if you run >= %d iterations" n
  | Do_not_port -> "do not port it"

let pp ppf r =
  Format.fprintf ppf "@[<v>verdict: %s@," (verdict_name r.verdict);
  Format.fprintf ppf
    "projected speedup at %d iteration(s): %.2fx (kernel-only view: %.2fx; limit: %.2fx)@,"
    r.iterations r.projected_speedup r.kernel_only_speedup r.limit_speedup;
  (match r.break_even_iterations with
  | Some n when n > 1 -> Format.fprintf ppf "break-even at %d iterations@," n
  | Some _ | None -> ());
  Format.fprintf ppf "dominant cost: %s@,"
    (match r.dominant_cost with
    | Kernel_time -> "kernel execution"
    | Upload -> "host-to-device transfer"
    | Download -> "device-to-host transfer");
  List.iter (fun n -> Format.fprintf ppf "- %s@," n) r.notes;
  Format.fprintf ppf "@]"
