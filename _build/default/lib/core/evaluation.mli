(** Speedup and prediction-error computation (the paper's metrics).

    The GPU speedup is total CPU time over total GPU time (§IV-A); the
    paper contrasts three predictors of it — kernel time only, transfer
    time only, and their sum (Table II) — against the measured speedup,
    using the error magnitude from [Gpp_util.Stats]. *)

type speedups = {
  measured : float;  (** CPU time / measured (kernel + transfer). *)
  kernel_only : float;  (** CPU time / predicted kernel time. *)
  transfer_only : float;  (** CPU time / predicted transfer time. *)
  with_transfer : float;  (** CPU time / predicted (kernel + transfer). *)
}

type errors = {
  kernel_only : float;  (** Percent error magnitude. *)
  transfer_only : float;
  with_transfer : float;
}

val cpu_time :
  ?params:Gpp_cpu.Timing.params -> machine:Gpp_arch.Machine.t -> Gpp_skeleton.Program.t -> float
(** Baseline time of the ported region on the host CPU. *)

val speedups : cpu_time:float -> Projection.t -> Measurement.t -> speedups

val errors : speedups -> errors

val kernel_error : Projection.t -> Measurement.t -> float
(** Error magnitude of the predicted total kernel time. *)

val transfer_error : Projection.t -> Measurement.t -> float
(** Error magnitude of the predicted total transfer time. *)

type iteration_point = { iterations : int; speedups : speedups }

val iteration_sweep :
  ?params:Gpp_cpu.Timing.params ->
  Projection.t ->
  Measurement.t ->
  iterations:int list ->
  iteration_point list
(** Speedups as a function of the iteration count (paper Figures 8, 10,
    12).  Per-kernel times are iteration-invariant; only the schedule
    multiplicity and the CPU baseline rescale, while transfers stay
    fixed (§IV-B). *)

val limit_speedups : ?params:Gpp_cpu.Timing.params -> Projection.t -> Measurement.t -> speedups
(** Speedups in the limit of infinitely many iterations: transfer costs
    amortize away and both prediction variants converge (§V-B).
    [transfer_only] degenerates to infinity and is reported as such. *)

val pp_speedups : Format.formatter -> speedups -> unit
