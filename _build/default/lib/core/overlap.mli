(** Transfer/compute overlap projection (extension).

    The paper's framework assumes synchronous transfers: total time is
    kernel time plus transfer time.  CUDA streams allow input chunks to
    upload while earlier chunks compute and outputs download behind the
    computation, hiding part of the bus cost.  This module bounds what
    such a streamed port could achieve, reusing an existing projection:

    - the input upload is split into [chunks] pieces, each paying the
      per-transfer latency [alpha] again;
    - steady state is a software pipeline over upload, kernel slices,
      and download: the projected span is the pipeline's bottleneck
      stage times the chunk count, plus the fill/drain of the other
      stages;
    - iterative programs cannot stream across iterations (each needs
      the whole input resident), so only the first iteration's upload
      and the last's download overlap; the middle iterations are pure
      kernel time, as in the serial projection.

    This is a {e best-case} bound: it assumes the kernel is divisible
    into independent chunks (true for the data-parallel workloads
    studied) and free stream scheduling. *)

type t = {
  chunks : int;
  serial_total : float;  (** The paper-style kernel + transfer sum. *)
  overlapped_total : float;  (** Projected streamed time. *)
  saving : float;  (** [serial_total - overlapped_total]. *)
  bottleneck : [ `Upload | `Kernel | `Download ];
      (** The pipeline stage that sets the streamed time. *)
}

val project : ?chunks:int -> Projection.t -> t
(** Bound the streamed execution of a projected application.  [chunks]
    defaults to 4.  @raise Invalid_argument when [chunks < 1]. *)

val best_chunks : ?candidates:int list -> Projection.t -> t
(** Evaluate several chunk counts (default 1, 2, 4, 8, 16) and return
    the best: more chunks overlap more but pay more latency terms. *)

val pp : Format.formatter -> t -> unit
