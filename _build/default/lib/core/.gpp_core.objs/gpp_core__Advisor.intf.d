lib/core/advisor.mli: Format Gpp_cpu Projection
