lib/core/evaluation.mli: Format Gpp_arch Gpp_cpu Gpp_skeleton Measurement Projection
