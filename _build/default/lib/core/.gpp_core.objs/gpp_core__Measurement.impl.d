lib/core/measurement.ml: Format Gpp_arch Gpp_dataflow Gpp_gpusim Gpp_pcie Gpp_skeleton Gpp_transform Gpp_util List Option Projection Result
