lib/core/overlap.ml: Float Format Gpp_dataflow Gpp_pcie Gpp_util List Projection
