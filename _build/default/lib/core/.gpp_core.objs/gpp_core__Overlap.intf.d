lib/core/overlap.mli: Format Projection
