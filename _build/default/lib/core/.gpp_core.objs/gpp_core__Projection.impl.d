lib/core/projection.ml: Format Gpp_arch Gpp_dataflow Gpp_model Gpp_pcie Gpp_skeleton Gpp_transform Gpp_util List Option Result
