lib/core/advisor.ml: Format Gpp_arch Gpp_cpu Gpp_dataflow Gpp_pcie Gpp_skeleton List Overlap Printf Projection
