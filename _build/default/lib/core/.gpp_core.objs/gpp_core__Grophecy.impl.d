lib/core/grophecy.ml: Evaluation Format Gpp_arch Gpp_model Gpp_pcie Gpp_skeleton Gpp_transform Gpp_util Int64 List Logs Measurement Projection Result
