lib/core/grophecy.mli: Evaluation Format Gpp_arch Gpp_cpu Gpp_dataflow Gpp_gpusim Gpp_model Gpp_pcie Gpp_skeleton Gpp_transform Measurement Projection
