lib/core/evaluation.ml: Float Format Gpp_arch Gpp_cpu Gpp_skeleton Gpp_util List Measurement Projection
