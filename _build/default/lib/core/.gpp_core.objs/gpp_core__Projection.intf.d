lib/core/projection.mli: Format Gpp_arch Gpp_dataflow Gpp_model Gpp_pcie Gpp_skeleton Gpp_transform
