lib/core/measurement.mli: Format Gpp_dataflow Gpp_gpusim Gpp_pcie Projection
