module Program = Gpp_skeleton.Program
module Stats = Gpp_util.Stats

type speedups = {
  measured : float;
  kernel_only : float;
  transfer_only : float;
  with_transfer : float;
}

type errors = { kernel_only : float; transfer_only : float; with_transfer : float }

let cpu_time ?params ~machine program =
  Gpp_cpu.Timing.program_time ?params ~cpu:machine.Gpp_arch.Machine.cpu program

let sum_schedule per_kernel schedule =
  List.fold_left
    (fun acc name -> acc +. (match List.assoc_opt name per_kernel with Some t -> t | None -> 0.0))
    0.0 schedule

let speedups_of ~cpu ~pred_kernel ~meas_kernel ~pred_transfer ~meas_transfer =
  {
    measured = cpu /. (meas_kernel +. meas_transfer);
    kernel_only = cpu /. pred_kernel;
    transfer_only = (if pred_transfer > 0.0 then cpu /. pred_transfer else Float.infinity);
    with_transfer = cpu /. (pred_kernel +. pred_transfer);
  }

let speedups ~cpu_time (projection : Projection.t) (measurement : Measurement.t) =
  speedups_of ~cpu:cpu_time ~pred_kernel:projection.Projection.kernel_time
    ~meas_kernel:measurement.Measurement.kernel_time
    ~pred_transfer:projection.Projection.transfer_time
    ~meas_transfer:measurement.Measurement.transfer_time

let errors (s : speedups) =
  {
    kernel_only = Stats.error_magnitude ~predicted:s.kernel_only ~measured:s.measured;
    transfer_only = Stats.error_magnitude ~predicted:s.transfer_only ~measured:s.measured;
    with_transfer = Stats.error_magnitude ~predicted:s.with_transfer ~measured:s.measured;
  }

let kernel_error (projection : Projection.t) (measurement : Measurement.t) =
  Stats.error_magnitude ~predicted:projection.Projection.kernel_time
    ~measured:measurement.Measurement.kernel_time

let transfer_error (projection : Projection.t) (measurement : Measurement.t) =
  Stats.error_magnitude ~predicted:projection.Projection.transfer_time
    ~measured:measurement.Measurement.transfer_time

type iteration_point = { iterations : int; speedups : speedups }

let totals_at ?params (projection : Projection.t) (measurement : Measurement.t) ~iterations =
  let program = Program.with_iterations projection.Projection.program iterations in
  let schedule = Program.flatten_schedule program in
  let cpu_per_kernel =
    Gpp_cpu.Timing.program_breakdowns ?params
      ~cpu:projection.Projection.machine.Gpp_arch.Machine.cpu program
    |> List.map (fun (name, (b : Gpp_cpu.Timing.breakdown)) -> (name, b.Gpp_cpu.Timing.time))
  in
  let cpu = sum_schedule cpu_per_kernel schedule in
  let pred_kernel = sum_schedule (Projection.per_kernel_times projection) schedule in
  let meas_kernel = sum_schedule (Measurement.per_kernel_times measurement) schedule in
  (cpu, pred_kernel, meas_kernel)

let iteration_sweep ?params projection measurement ~iterations =
  List.map
    (fun n ->
      let cpu, pred_kernel, meas_kernel = totals_at ?params projection measurement ~iterations:n in
      {
        iterations = n;
        speedups =
          speedups_of ~cpu ~pred_kernel ~meas_kernel
            ~pred_transfer:projection.Projection.transfer_time
            ~meas_transfer:measurement.Measurement.transfer_time;
      })
    iterations

let limit_speedups ?params projection measurement =
  let cpu1, pred1, meas1 = totals_at ?params projection measurement ~iterations:1 in
  let cpu2, pred2, meas2 = totals_at ?params projection measurement ~iterations:2 in
  let d_cpu = cpu2 -. cpu1 and d_pred = pred2 -. pred1 and d_meas = meas2 -. meas1 in
  if d_cpu > 0.0 && d_pred > 0.0 && d_meas > 0.0 then
    (* Amortized regime: transfers vanish; only per-iteration kernel and
       CPU work remain. *)
    {
      measured = d_cpu /. d_meas;
      kernel_only = d_cpu /. d_pred;
      transfer_only = Float.infinity;
      with_transfer = d_cpu /. d_pred;
    }
  else
    (* Non-iterative program: the limit is just the transfer-free ratio
       of the single execution. *)
    {
      measured = cpu1 /. meas1;
      kernel_only = cpu1 /. pred1;
      transfer_only = Float.infinity;
      with_transfer = cpu1 /. pred1;
    }

let pp_speedups ppf s =
  Format.fprintf ppf
    "measured %.2fx; predicted: kernel-only %.2fx, transfer-only %.2fx, kernel+transfer %.2fx"
    s.measured s.kernel_only s.transfer_only s.with_transfer
