(** Porting advice from a projection — the decision the paper's users
    actually need to make.

    The framework exists so that developers can decide whether porting
    to the GPU "is indeed worth investing the time and effort" (§II-C)
    {e before} writing any CUDA.  This module turns a projection into
    that decision: a verdict, the break-even iteration count for
    iterative codes, the dominant cost center, and concrete follow-up
    suggestions (iterate more, batch small arrays, stream transfers).

    Everything here is prediction-only: no simulated measurement is
    consulted, exactly as a real user of the framework would operate. *)

type verdict =
  | Port  (** Projected end-to-end win at the given iteration count. *)
  | Port_if_iterated of int
      (** A loss now, but the transfer amortizes: wins from this many
          iterations on. *)
  | Do_not_port
      (** Even infinitely many iterations never win: the kernel itself
          is projected slower than the CPU baseline. *)

type cost_center = Kernel_time | Upload | Download

type recommendation = {
  verdict : verdict;
  iterations : int;  (** Iteration count the verdict was computed at. *)
  projected_speedup : float;  (** Transfer-aware, at [iterations]. *)
  kernel_only_speedup : float;  (** What a transfer-blind analysis would
                                    have claimed. *)
  limit_speedup : float;  (** As iterations approach infinity. *)
  break_even_iterations : int option;
      (** Smallest iteration count with a projected win; [None] when no
          count wins. *)
  dominant_cost : cost_center;  (** Largest time component at
                                    [iterations]. *)
  notes : string list;  (** Human-readable follow-up suggestions. *)
}

val recommend :
  ?cpu_params:Gpp_cpu.Timing.params -> ?iterations:int -> Projection.t -> recommendation
(** Advise on a projected program.  [iterations] (default 1) rescales
    the program's [Repeat] nodes before judging.
    @raise Invalid_argument when [iterations < 1]. *)

val verdict_name : verdict -> string

val pp : Format.formatter -> recommendation -> unit
