module Analyzer = Gpp_dataflow.Analyzer
module Model = Gpp_pcie.Model

type t = {
  chunks : int;
  serial_total : float;
  overlapped_total : float;
  saving : float;
  bottleneck : [ `Upload | `Kernel | `Download ];
}

(* One direction's pipeline-stage time per slice: each slice re-pays the
   per-array transfer latency (alpha), while the bandwidth term divides
   across the chunks. *)
let stage_time (projection : Projection.t) direction ~chunks =
  let model =
    match direction with
    | Analyzer.To_device -> projection.Projection.h2d
    | Analyzer.From_device -> projection.Projection.d2h
  in
  List.fold_left
    (fun acc (pt : Projection.priced_transfer) ->
      if pt.Projection.transfer.Analyzer.direction = direction then
        let bandwidth_time = pt.Projection.time -. Model.latency model in
        acc +. Model.latency model +. (bandwidth_time /. float_of_int chunks)
      else acc)
    0.0
    projection.Projection.transfers

let project ?(chunks = 4) (projection : Projection.t) =
  if chunks < 1 then invalid_arg "Overlap.project: chunks must be >= 1";
  let t_up = stage_time projection Analyzer.To_device ~chunks in
  let t_down = stage_time projection Analyzer.From_device ~chunks in
  let t_kernel = projection.Projection.kernel_time /. float_of_int chunks in
  let bottleneck_time = Float.max t_up (Float.max t_kernel t_down) in
  let bottleneck =
    if bottleneck_time = t_up then `Upload
    else if bottleneck_time = t_kernel then `Kernel
    else `Download
  in
  (* 3-stage software pipeline over [chunks] slices: fill with one pass
     through all stages, then the bottleneck paces the remaining
     slices. *)
  let overlapped = t_up +. t_kernel +. t_down +. (float_of_int (chunks - 1) *. bottleneck_time) in
  let serial_total = projection.Projection.total_time in
  let overlapped_total = Float.min overlapped serial_total in
  {
    chunks;
    serial_total;
    overlapped_total;
    saving = serial_total -. overlapped_total;
    bottleneck;
  }

let best_chunks ?(candidates = [ 1; 2; 4; 8; 16 ]) projection =
  match List.map (fun chunks -> project ~chunks projection) candidates with
  | [] -> invalid_arg "Overlap.best_chunks: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best p -> if p.overlapped_total < best.overlapped_total then p else best)
        first rest

let pp ppf t =
  Format.fprintf ppf "%d chunks: serial %a -> streamed %a (saves %a; bottleneck %s)" t.chunks
    Gpp_util.Units.pp_time t.serial_total Gpp_util.Units.pp_time t.overlapped_total
    Gpp_util.Units.pp_time t.saving
    (match t.bottleneck with `Upload -> "upload" | `Kernel -> "kernel" | `Download -> "download")
