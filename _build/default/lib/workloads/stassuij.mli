(** Stassuij: sparse x dense multiply from Green's Function Monte Carlo.

    The core of GFMC calculations for light nuclei (paper §IV-B): a
    132x132 sparse matrix of reals (CSR format, three vectors) times a
    132x2048 dense matrix of complex numbers, accumulated into a complex
    result that the host initializes and consumes.

    This is the paper's decisive case: the kernel-only projection says
    the GPU wins (1.10x), but transfers of the dense complex matrices
    dominate and the real outcome is a 0.39x slowdown — only the
    transfer-aware projection gets the {e decision} right (§V-B.4). *)

type shape = {
  rows : int;  (** Sparse-matrix rows (132). *)
  cols : int;  (** Sparse-matrix columns (132). *)
  dense_cols : int;  (** Dense-matrix columns (2048). *)
  nnz : int;  (** Stored sparse entries. *)
}

val default_shape : shape
(** The paper's configuration, with a ~10% dense sparse operator. *)

val program : ?iterations:int -> ?shape:shape -> unit -> Gpp_skeleton.Program.t

module Reference : sig
  type csr = {
    rows : int;
    cols : int;
    row_ptr : int array;  (** Length [rows + 1]. *)
    col_idx : int array;
    values : float array;
  }

  type complex_matrix = {
    m_rows : int;
    m_cols : int;
    re : float array;  (** Row-major. *)
    im : float array;
  }

  val random_csr : ?seed:int64 -> rows:int -> cols:int -> density:float -> unit -> csr
  (** Uniformly scattered non-zeros with at least one entry per row. *)

  val random_complex : ?seed:int64 -> rows:int -> cols:int -> unit -> complex_matrix

  val multiply : csr -> complex_matrix -> complex_matrix
  (** [A * X] for real sparse [A] and complex dense [X].
      @raise Invalid_argument on dimension mismatch. *)

  val multiply_accumulate : csr -> complex_matrix -> into:complex_matrix -> complex_matrix
  (** [Y + A * X], the kernel's actual read-modify-write dataflow. *)

  val dense_multiply : csr -> complex_matrix -> complex_matrix
  (** Naive reference computed through an explicit dense copy of [A]
      (for testing {!multiply}). *)

  val max_abs_diff : complex_matrix -> complex_matrix -> float
end
