(** SRAD: speckle-reducing anisotropic diffusion (Rodinia).

    Removes speckle noise from ultrasonic/radar images without
    destroying features (paper §IV-B).  Two kernels per iteration: the
    first computes directional derivatives and the diffusion
    coefficient, the second applies the divergence update to the image.
    The coefficient and derivative arrays are device-resident
    temporaries (the paper's user-hint mechanism, §III-B): only the
    image crosses the bus, once in and once out. *)

val data_sizes : int list
(** Image edge lengths studied in the paper: 1024, 2048, 4096. *)

val size_label : int -> string

val program : ?iterations:int -> n:int -> unit -> Gpp_skeleton.Program.t

module Reference : sig
  type image = { n : int; pixels : float array }

  val image_of : n:int -> (row:int -> col:int -> float) -> image

  val lambda : float
  (** Diffusion update weight used by {!iterate}. *)

  val iterate : image -> image
  (** One SRAD iteration (derivatives, coefficient, update) with
      clamped boundaries. *)

  val simulate : image -> iterations:int -> image

  val mean_variance : image -> float * float
  (** Image statistics; SRAD should reduce variance on noisy-constant
      regions while preserving the mean. *)
end
