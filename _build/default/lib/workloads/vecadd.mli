(** Vector addition — the paper's pedagogical example (§II-B).

    An extremely data-parallel, bandwidth-bound kernel that looks ideal
    for the GPU until transfer time is considered: two input vectors
    must cross the PCIe bus in, and the result back out, swamping the
    kernel-time advantage.  The quickstart example reproduces the
    paper's "2.4x faster kernel, ~10x slower end to end" argument with
    this workload. *)

val program : n:int -> Gpp_skeleton.Program.t
(** Skeleton of [c = a + b] over [n] single-precision elements. *)

module Reference : sig
  val run : float array -> float array -> float array
  (** Element-wise sum.  @raise Invalid_argument on length mismatch. *)
end
