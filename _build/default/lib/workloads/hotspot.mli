(** HotSpot: structured-grid thermal simulation (Rodinia).

    An ordinary-differential-equation solver over a structured grid used
    to estimate microarchitecture temperature (paper §IV-B).  Each cell
    gathers its 3x3 neighbourhood of temperatures plus its own power
    dissipation and produces an updated temperature; one kernel
    invocation per iteration.  Inputs: the temperature and power grids;
    output: the final temperature grid — transfer volume is independent
    of the iteration count. *)

val data_sizes : int list
(** Grid edge lengths studied in the paper: 64, 512, 1024. *)

val size_label : int -> string
(** E.g. ["1024 x 1024"]. *)

val program : ?iterations:int -> n:int -> unit -> Gpp_skeleton.Program.t
(** Skeleton for an [n x n] grid; [iterations] defaults to 1. *)

module Reference : sig
  type grid = { n : int; cells : float array }
  (** Row-major [n x n] float grid. *)

  val grid_of : n:int -> (row:int -> col:int -> float) -> grid

  val step : temp:grid -> power:grid -> grid
  (** One explicit time step of the thermal ODE with clamped (replicated)
      boundary handling.  @raise Invalid_argument on size mismatch. *)

  val simulate : temp:grid -> power:grid -> iterations:int -> grid

  val max_abs_diff : grid -> grid -> float
end
