module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Ix = Gpp_skeleton.Index_expr
module Program = Gpp_skeleton.Program

let data_sizes = [ 64; 512; 1024 ]

let size_label n = Printf.sprintf "%d x %d" n n

let program ?(iterations = 1) ~n () =
  let arrays =
    [
      Decl.dense "temp" ~dims:[ n; n ];
      Decl.dense "power" ~dims:[ n; n ];
      Decl.dense "temp_out" ~dims:[ n; n ];
    ]
  in
  let at dy dx = [ Ix.offset (Ix.var "y") dy; Ix.offset (Ix.var "x") dx ] in
  let neighborhood =
    List.concat_map (fun dy -> List.map (fun dx -> Ir.load "temp" (at dy dx)) [ -1; 0; 1 ]) [ -1; 0; 1 ]
  in
  let kernel =
    Ir.kernel "hotspot"
      ~loops:[ Ir.loop "y" ~extent:n; Ir.loop "x" ~extent:n ]
      ~body:
        (neighborhood
        @ [
            Ir.load "power" (at 0 0);
            (* Weighted 3x3 gather, thermal resistances applied as
               divisions in the reference code (the heavy ops), then the
               explicit update. *)
            (* The real kernel spends many issue slots on addressing and
               neighbourhood bookkeeping (nine gathered offsets with
               bounds handling) on top of the arithmetic. *)
            Ir.compute ~int_ops:22.0 ~heavy_ops:4.0 20.0;
            (* Grid-boundary cells take a clamped-neighbour path. *)
            Ir.branch ~divergent:true ~probability:0.06 [ Ir.compute ~int_ops:4.0 4.0 ];
            Ir.store "temp_out" (at 0 0);
          ])
  in
  Program.create
    ~name:(Printf.sprintf "hotspot-%d" n)
    ~arrays ~kernels:[ kernel ]
    ~schedule:[ Program.Repeat (iterations, [ Program.Call "hotspot" ]) ]
    ()

module Reference = struct
  type grid = { n : int; cells : float array }

  let grid_of ~n f =
    { n; cells = Array.init (n * n) (fun i -> f ~row:(i / n) ~col:(i mod n)) }

  (* Physical constants in the spirit of the Rodinia implementation,
     collapsed to a stable explicit scheme. *)
  let rx = 1.0 /. 0.1
  let ry = 1.0 /. 0.1
  let rz = 1.0 /. 3.0
  let cap = 0.5
  let ambient = 80.0

  let step ~temp ~power =
    if temp.n <> power.n then invalid_arg "Hotspot.Reference.step: size mismatch";
    let n = temp.n in
    let clamp v = max 0 (min (n - 1) v) in
    let get g r c = g.cells.((clamp r * n) + clamp c) in
    let cells =
      Array.init (n * n) (fun i ->
          let r = i / n and c = i mod n in
          let t = get temp r c in
          (* 3x3 neighbourhood: axis neighbours at full weight, diagonal
             neighbours at half weight, mirroring the paper's
             description of a 3x3 stencil. *)
          let axis = get temp (r - 1) c +. get temp (r + 1) c -. (2.0 *. t) in
          let axis' = get temp r (c - 1) +. get temp r (c + 1) -. (2.0 *. t) in
          let diag =
            get temp (r - 1) (c - 1) +. get temp (r - 1) (c + 1) +. get temp (r + 1) (c - 1)
            +. get temp (r + 1) (c + 1) -. (4.0 *. t)
          in
          let delta =
            (power.cells.(i) +. (axis /. ry) +. (axis' /. rx) +. (0.5 *. diag /. rx)
            +. ((ambient -. t) /. rz))
            /. cap
          in
          t +. (0.001 *. delta))
    in
    { n; cells }

  let simulate ~temp ~power ~iterations =
    if iterations < 0 then invalid_arg "Hotspot.Reference.simulate: negative iterations";
    let rec go temp k = if k = 0 then temp else go (step ~temp ~power) (k - 1) in
    go temp iterations

  let max_abs_diff a b =
    if a.n <> b.n then invalid_arg "Hotspot.Reference.max_abs_diff: size mismatch";
    let worst = ref 0.0 in
    Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.cells.(i)))) a.cells;
    !worst
end
