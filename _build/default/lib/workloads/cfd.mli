(** CFD: unstructured-grid finite-volume Euler solver (Rodinia).

    Solves the 3D Euler equations for compressible flow (paper §IV-B).
    Three kernels per iteration — step-factor computation, flux
    accumulation over each element's neighbours (indirect gathers
    through the mesh connectivity, the irregular access pattern that
    makes CFD's kernel time hard to predict), and the time-step update.
    Kernels are split to enforce global synchronization between flux
    production and consumption.

    The conserved variables cross the bus in and out; mesh geometry
    (connectivity, face normals, areas) crosses once in; step factors
    and fluxes are device-resident temporaries. *)

val data_sizes : int list
(** Element counts studied in the paper: 97K, 193K, 233K. *)

val size_label : int -> string
(** E.g. ["97K"]. *)

val program : ?iterations:int -> nelem:int -> unit -> Gpp_skeleton.Program.t

module Reference : sig
  (** A runnable finite-volume solver on a 1-D periodic mesh with
      Rusanov fluxes — the same algorithmic skeleton (gather neighbour
      states, compute fluxes, apply a CFL-limited update) at a
      dimensionality that keeps the reference concise. *)

  type state = {
    n : int;
    density : float array;
    momentum : float array;
    energy : float array;
  }

  val gamma : float

  val uniform_with_pulse : n:int -> state
  (** Quiescent gas with a centred density/pressure pulse. *)

  val pressure : state -> int -> float

  val step : ?cfl:float -> state -> state
  (** One explicit finite-volume step.  @raise Invalid_argument for a
      non-positive CFL number. *)

  val simulate : ?cfl:float -> state -> iterations:int -> state

  val total_mass : state -> float

  val total_energy : state -> float
end
