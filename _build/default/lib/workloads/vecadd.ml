module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Ix = Gpp_skeleton.Index_expr
module Program = Gpp_skeleton.Program

let program ~n =
  let arrays = [ Decl.dense "a" ~dims:[ n ]; Decl.dense "b" ~dims:[ n ]; Decl.dense "c" ~dims:[ n ] ] in
  let kernel =
    Ir.kernel "vecadd"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.load "b" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "c" [ Ix.var "i" ] ]
  in
  Program.create ~name:(Printf.sprintf "vecadd-%d" n) ~arrays ~kernels:[ kernel ]
    ~schedule:[ Program.Call "vecadd" ] ()

module Reference = struct
  let run a b =
    if Array.length a <> Array.length b then invalid_arg "Vecadd.Reference.run: length mismatch";
    Array.init (Array.length a) (fun i -> a.(i) +. b.(i))
end
