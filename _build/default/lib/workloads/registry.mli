(** Named catalogue of the paper's workloads and data sizes.

    The experiment harness and the CLI address workload instances as
    ["<app>/<size>"] (e.g. ["hotspot/1024 x 1024"], ["cfd/97K"]). *)

type instance = {
  app : string;  (** Application name: cfd, hotspot, srad, stassuij. *)
  size : string;  (** Data-size label as the paper prints it. *)
  program : int -> Gpp_skeleton.Program.t;
      (** Builds the skeleton for a given iteration count. *)
}

val all : instance list
(** Every application/data-size pair of Table I, in the paper's order,
    plus the vecadd example at a representative size. *)

val paper_instances : instance list
(** Only the Table I rows (no vecadd). *)

val find : app:string -> size:string -> instance option

val find_by_key : string -> instance option
(** ["app/size"] lookup. *)

val key : instance -> string

val apps : string list
(** Distinct application names, paper order. *)

val instances_of_app : string -> instance list
