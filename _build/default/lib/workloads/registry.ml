type instance = {
  app : string;
  size : string;
  program : int -> Gpp_skeleton.Program.t;
}

let cfd_instances =
  List.map
    (fun nelem ->
      {
        app = "cfd";
        size = Cfd.size_label nelem;
        program = (fun iterations -> Cfd.program ~iterations ~nelem ());
      })
    Cfd.data_sizes

let hotspot_instances =
  List.map
    (fun n ->
      {
        app = "hotspot";
        size = Hotspot.size_label n;
        program = (fun iterations -> Hotspot.program ~iterations ~n ());
      })
    Hotspot.data_sizes

let srad_instances =
  List.map
    (fun n ->
      {
        app = "srad";
        size = Srad.size_label n;
        program = (fun iterations -> Srad.program ~iterations ~n ());
      })
    Srad.data_sizes

let stassuij_instance =
  {
    app = "stassuij";
    size = "132 x 2048";
    program = (fun iterations -> Stassuij.program ~iterations ());
  }

let vecadd_instance =
  {
    app = "vecadd";
    size = "16M";
    program =
      (fun _iterations ->
        (* Vector addition has no iteration dimension. *)
        Vecadd.program ~n:(16 * 1024 * 1024));
  }

let paper_instances =
  cfd_instances @ hotspot_instances @ srad_instances @ [ stassuij_instance ]

let all = paper_instances @ [ vecadd_instance ]

let find ~app ~size = List.find_opt (fun i -> i.app = app && i.size = size) all

let key i = i.app ^ "/" ^ i.size

let find_by_key k =
  match String.index_opt k '/' with
  | None -> None
  | Some pos ->
      let app = String.sub k 0 pos in
      let size = String.sub k (pos + 1) (String.length k - pos - 1) in
      find ~app ~size

let apps =
  List.fold_left (fun acc i -> if List.mem i.app acc then acc else acc @ [ i.app ]) [] all

let instances_of_app app = List.filter (fun i -> i.app = app) all
