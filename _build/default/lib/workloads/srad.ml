module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Ix = Gpp_skeleton.Index_expr
module Program = Gpp_skeleton.Program

let data_sizes = [ 1024; 2048; 4096 ]

let size_label n = Printf.sprintf "%d x %d" n n

let program ?(iterations = 1) ~n () =
  let grid name = Decl.dense name ~dims:[ n; n ] in
  let arrays =
    [ grid "image"; grid "coeff"; grid "dn"; grid "ds"; grid "de"; grid "dw" ]
  in
  let at ?(dy = 0) ?(dx = 0) () = [ Ix.offset (Ix.var "y") dy; Ix.offset (Ix.var "x") dx ] in
  let loops = [ Ir.loop "y" ~extent:n; Ir.loop "x" ~extent:n ] in
  (* Kernel 1: directional derivatives and the diffusion coefficient
     (gradient magnitude, Laplacian, then the nonlinear q function with
     its divisions). *)
  let diffusion =
    Ir.kernel "srad_diffusion" ~loops
      ~body:
        [
          Ir.load "image" (at ());
          Ir.load "image" (at ~dy:(-1) ());
          Ir.load "image" (at ~dy:1 ());
          Ir.load "image" (at ~dx:(-1) ());
          Ir.load "image" (at ~dx:1 ());
          Ir.compute ~int_ops:6.0 ~heavy_ops:3.0 18.0;
          Ir.store "dn" (at ());
          Ir.store "ds" (at ());
          Ir.store "de" (at ());
          Ir.store "dw" (at ());
          Ir.store "coeff" (at ());
        ]
  in
  (* Kernel 2: divergence of the coefficient-weighted derivatives
     updates the image in place. *)
  let update =
    Ir.kernel "srad_update" ~loops
      ~body:
        [
          Ir.load "coeff" (at ());
          Ir.load "coeff" (at ~dy:1 ());
          Ir.load "coeff" (at ~dx:1 ());
          Ir.load "dn" (at ());
          Ir.load "ds" (at ());
          Ir.load "de" (at ());
          Ir.load "dw" (at ());
          Ir.load "image" (at ());
          Ir.compute ~int_ops:4.0 ~heavy_ops:1.0 11.0;
          Ir.store "image" (at ());
        ]
  in
  Program.create
    ~name:(Printf.sprintf "srad-%d" n)
    ~arrays
    ~kernels:[ diffusion; update ]
    ~schedule:[ Program.Repeat (iterations, [ Program.Call "srad_diffusion"; Program.Call "srad_update" ]) ]
    ~temporaries:[ "coeff"; "dn"; "ds"; "de"; "dw" ] ()

module Reference = struct
  type image = { n : int; pixels : float array }

  let image_of ~n f = { n; pixels = Array.init (n * n) (fun i -> f ~row:(i / n) ~col:(i mod n)) }

  let lambda = 0.5

  let iterate img =
    let n = img.n in
    let clamp v = max 0 (min (n - 1) v) in
    let get r c = img.pixels.((clamp r * n) + clamp c) in
    let dn = Array.make (n * n) 0.0
    and ds = Array.make (n * n) 0.0
    and de = Array.make (n * n) 0.0
    and dw = Array.make (n * n) 0.0
    and coeff = Array.make (n * n) 0.0 in
    (* Global q0^2 from image statistics, as in the SRAD formulation. *)
    let sum = Array.fold_left ( +. ) 0.0 img.pixels in
    let sum2 = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 img.pixels in
    let count = float_of_int (n * n) in
    let mean = sum /. count in
    let var = (sum2 /. count) -. (mean *. mean) in
    let q0sqr = var /. (mean *. mean) in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        let i = (r * n) + c in
        let jc = img.pixels.(i) in
        let north = get (r - 1) c -. jc
        and south = get (r + 1) c -. jc
        and east = get r (c + 1) -. jc
        and west = get r (c - 1) -. jc in
        dn.(i) <- north;
        ds.(i) <- south;
        de.(i) <- east;
        dw.(i) <- west;
        let g2 =
          ((north *. north) +. (south *. south) +. (east *. east) +. (west *. west))
          /. (jc *. jc)
        in
        let l = (north +. south +. east +. west) /. jc in
        let num = (0.5 *. g2) -. (1.0 /. 16.0 *. l *. l) in
        let den = 1.0 +. (0.25 *. l) in
        let qsqr = num /. (den *. den) in
        let d = (qsqr -. q0sqr) /. (q0sqr *. (1.0 +. q0sqr)) in
        let c_val = 1.0 /. (1.0 +. d) in
        coeff.(i) <- Float.max 0.0 (Float.min 1.0 c_val)
      done
    done;
    let coeff_at r c = coeff.((clamp r * n) + clamp c) in
    let pixels =
      Array.init (n * n) (fun i ->
          let r = i / n and c = i mod n in
          let cn = coeff.(i)
          and cs = coeff_at (r + 1) c
          and ce = coeff_at r (c + 1)
          and cw = coeff.(i) in
          let divergence =
            (cn *. dn.(i)) +. (cs *. ds.(i)) +. (ce *. de.(i)) +. (cw *. dw.(i))
          in
          img.pixels.(i) +. (0.25 *. lambda *. divergence))
    in
    { n; pixels }

  let simulate img ~iterations =
    if iterations < 0 then invalid_arg "Srad.Reference.simulate: negative iterations";
    let rec go img k = if k = 0 then img else go (iterate img) (k - 1) in
    go img iterations

  let mean_variance img =
    let count = float_of_int (Array.length img.pixels) in
    let mean = Array.fold_left ( +. ) 0.0 img.pixels /. count in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 img.pixels /. count
    in
    (mean, var)
end
