module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Ix = Gpp_skeleton.Index_expr
module Program = Gpp_skeleton.Program

let data_sizes = [ 97_000; 193_000; 233_000 ]

let size_label nelem = Printf.sprintf "%dK" (nelem / 1000)

let num_vars = 5 (* density, momentum x3, energy *)

let neighbors_per_elem = 4

let program ?(iterations = 1) ~nelem () =
  let arrays =
    [
      (* Structure-of-arrays layout, as in the CUDA implementation:
         variables[f][i] keeps lane accesses coalesced. *)
      Decl.dense "variables" ~dims:[ num_vars; nelem ];
      Decl.dense "neighbors" ~dims:[ nelem; neighbors_per_elem ];
      Decl.dense "normals" ~dims:[ 2 * neighbors_per_elem; nelem ];
      Decl.dense "areas" ~dims:[ nelem ];
      Decl.dense "step_factor" ~dims:[ nelem ];
      Decl.dense "fluxes" ~dims:[ num_vars; nelem ];
    ]
  in
  let var_loads array = List.init num_vars (fun f -> Ir.load array [ Ix.const f; Ix.var "i" ]) in
  let var_stores array = List.init num_vars (fun f -> Ir.store array [ Ix.const f; Ix.var "i" ]) in
  (* Kernel 1: CFL step factor per element — a sound-speed computation
     with a square root and a division. *)
  let step_factor =
    Ir.kernel "compute_step_factor"
      ~loops:[ Ir.loop "i" ~extent:nelem ]
      ~body:
        (var_loads "variables"
        @ [
            Ir.load "areas" [ Ix.var "i" ];
            Ir.compute ~int_ops:2.0 ~heavy_ops:2.0 9.0;
            Ir.store "step_factor" [ Ix.var "i" ];
          ])
  in
  (* Kernel 2: flux accumulation over the four mesh neighbours.  The
     neighbour states are gathered through the connectivity array —
     the scattered accesses that dominate this kernel's memory
     behaviour.  Per-element work (loading own state, storing fluxes)
     amortizes over the neighbour loop as probability-1/4 statements. *)
  let flux =
    let once stmts = [ Ir.branch ~divergent:false ~probability:0.25 stmts ] in
    Ir.kernel "compute_flux"
      ~loops:[ Ir.loop "i" ~extent:nelem; Ir.loop ~parallel:false "j" ~extent:neighbors_per_elem ]
      ~body:
        ([ Ir.load "neighbors" [ Ix.var "i"; Ix.var "j" ] ]
        @ List.init num_vars (fun _ -> Ir.load_indirect "variables" ~via:"neighbors")
        @ [
            Ir.load "normals" [ Ix.var ~coeff:2 "j"; Ix.var "i" ];
            Ir.load "normals" [ Ix.offset (Ix.var ~coeff:2 "j") 1; Ix.var "i" ];
            (* Euler flux through one face: pressure, sound speed,
               normal projection, and the upwinding terms — several
               divisions and a square root per face. *)
            Ir.compute ~int_ops:6.0 ~heavy_ops:4.0 45.0;
            (* Boundary faces take a cheaper specialized path. *)
            Ir.branch ~divergent:true ~probability:0.08 [ Ir.compute 6.0 ];
          ]
        @ once (var_loads "variables")
        @ once (var_stores "fluxes"))
  in
  (* Kernel 3: explicit update of the conserved variables. *)
  let time_step =
    Ir.kernel "time_step"
      ~loops:[ Ir.loop "i" ~extent:nelem ]
      ~body:
        ([ Ir.load "step_factor" [ Ix.var "i" ] ]
        @ var_loads "fluxes" @ var_loads "variables"
        @ [ Ir.compute ~int_ops:2.0 12.0 ]
        @ var_stores "variables")
  in
  Program.create
    ~name:(Printf.sprintf "cfd-%s" (size_label nelem))
    ~arrays
    ~kernels:[ step_factor; flux; time_step ]
    ~schedule:
      [
        Program.Repeat
          ( iterations,
            [ Program.Call "compute_step_factor"; Program.Call "compute_flux"; Program.Call "time_step" ] );
      ]
    ~temporaries:[ "step_factor"; "fluxes" ] ()

module Reference = struct
  type state = { n : int; density : float array; momentum : float array; energy : float array }

  let gamma = 1.4

  let uniform_with_pulse ~n =
    let density =
      Array.init n (fun i ->
          let x = float_of_int i /. float_of_int n in
          1.0 +. if x > 0.4 && x < 0.6 then 0.5 else 0.0)
    in
    let momentum = Array.make n 0.0 in
    let energy = Array.init n (fun i -> (1.0 +. (0.5 *. density.(i))) /. (gamma -. 1.0)) in
    { n; density; momentum; energy }

  let pressure s i =
    let rho = s.density.(i) and m = s.momentum.(i) and e = s.energy.(i) in
    (gamma -. 1.0) *. (e -. (0.5 *. m *. m /. rho))

  let sound_speed s i = sqrt (gamma *. pressure s i /. s.density.(i))

  (* Rusanov (local Lax-Friedrichs) flux at the face between cells l and
     r: average of the physical fluxes minus a dissipation proportional
     to the fastest local wave speed. *)
  let face_flux s l r =
    let physical i =
      let rho = s.density.(i) and m = s.momentum.(i) and e = s.energy.(i) in
      let u = m /. rho and p = pressure s i in
      (m, (m *. u) +. p, (e +. p) *. u)
    in
    let fl0, fl1, fl2 = physical l and fr0, fr1, fr2 = physical r in
    let speed i = Float.abs (s.momentum.(i) /. s.density.(i)) +. sound_speed s i in
    let a = Float.max (speed l) (speed r) in
    ( (0.5 *. (fl0 +. fr0)) -. (0.5 *. a *. (s.density.(r) -. s.density.(l))),
      (0.5 *. (fl1 +. fr1)) -. (0.5 *. a *. (s.momentum.(r) -. s.momentum.(l))),
      (0.5 *. (fl2 +. fr2)) -. (0.5 *. a *. (s.energy.(r) -. s.energy.(l))) )

  let step ?(cfl = 0.4) s =
    if cfl <= 0.0 then invalid_arg "Cfd.Reference.step: CFL must be positive";
    let n = s.n in
    let dx = 1.0 /. float_of_int n in
    (* Step factor: the CFL-limited time step (kernel 1's analogue). *)
    let max_speed = ref 1e-12 in
    for i = 0 to n - 1 do
      max_speed :=
        Float.max !max_speed (Float.abs (s.momentum.(i) /. s.density.(i)) +. sound_speed s i)
    done;
    let dt = cfl *. dx /. !max_speed in
    let wrap i = ((i mod n) + n) mod n in
    let density = Array.make n 0.0 and momentum = Array.make n 0.0 and energy = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let fr0, fr1, fr2 = face_flux s i (wrap (i + 1)) in
      let fl0, fl1, fl2 = face_flux s (wrap (i - 1)) i in
      let k = dt /. dx in
      density.(i) <- s.density.(i) -. (k *. (fr0 -. fl0));
      momentum.(i) <- s.momentum.(i) -. (k *. (fr1 -. fl1));
      energy.(i) <- s.energy.(i) -. (k *. (fr2 -. fl2))
    done;
    { n; density; momentum; energy }

  let simulate ?cfl s ~iterations =
    if iterations < 0 then invalid_arg "Cfd.Reference.simulate: negative iterations";
    let rec go s k = if k = 0 then s else go (step ?cfl s) (k - 1) in
    go s iterations

  let total_mass s = Array.fold_left ( +. ) 0.0 s.density /. float_of_int s.n

  let total_energy s = Array.fold_left ( +. ) 0.0 s.energy /. float_of_int s.n
end
