lib/workloads/vecadd.mli: Gpp_skeleton
