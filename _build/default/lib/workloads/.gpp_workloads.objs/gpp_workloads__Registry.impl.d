lib/workloads/registry.ml: Cfd Gpp_skeleton Hotspot List Srad Stassuij String Vecadd
