lib/workloads/stassuij.ml: Array Float Gpp_skeleton Gpp_util Hashtbl List Printf
