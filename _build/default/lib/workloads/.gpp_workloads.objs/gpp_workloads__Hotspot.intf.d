lib/workloads/hotspot.mli: Gpp_skeleton
