lib/workloads/cfd.ml: Array Float Gpp_skeleton List Printf
