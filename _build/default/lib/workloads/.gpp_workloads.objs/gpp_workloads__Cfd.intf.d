lib/workloads/cfd.mli: Gpp_skeleton
