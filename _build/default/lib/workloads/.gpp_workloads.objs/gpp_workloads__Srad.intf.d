lib/workloads/srad.mli: Gpp_skeleton
