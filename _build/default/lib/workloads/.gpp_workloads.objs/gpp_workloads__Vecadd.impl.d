lib/workloads/vecadd.ml: Array Gpp_skeleton Printf
