lib/workloads/registry.mli: Gpp_skeleton
