lib/workloads/hotspot.ml: Array Float Gpp_skeleton List Printf
