lib/workloads/stassuij.mli: Gpp_skeleton
