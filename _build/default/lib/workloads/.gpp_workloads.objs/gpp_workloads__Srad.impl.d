lib/workloads/srad.ml: Array Float Gpp_skeleton Printf
