(** Automatic pinned-vs-pageable selection per transfer (paper §VII).

    Completes the paper's future-work item: given calibrated models for
    both memory types and the allocation cost model, choose the memory
    type that minimizes {e allocation (amortized over buffer reuses) +
    transfer} time for each transfer.  Pinning wins for large or
    frequently reused buffers; one-shot small transfers often do better
    with plain pageable memory. *)

type models = {
  pinned : Model.t;
  pageable : Model.t;
}
(** Calibrated models of both memory types for one direction. *)

val models_for :
  ?protocol:Calibrate.protocol -> Link.t -> Link.direction -> models
(** Calibrate both memory types on the link. *)

type decision = {
  bytes : int;
  reuses : int;
  memory : Link.memory;  (** The winning memory type. *)
  pinned_total : float;  (** Amortized allocation + transfer, pinned. *)
  pageable_total : float;
  saving : float;  (** Time saved over the losing option, s. *)
}

val choose :
  ?allocation:Allocation.cost_model -> models -> bytes:int -> reuses:int -> decision
(** Pick the cheaper memory type for one buffer that is transferred
    [reuses] times over the application's life.
    @raise Invalid_argument for negative sizes or [reuses < 1]. *)

val break_even_reuses :
  ?allocation:Allocation.cost_model -> ?max_reuses:int -> models -> bytes:int -> int option
(** Smallest reuse count at which pinned memory becomes the right
    choice for a buffer of this size; [None] if it never does within
    [max_reuses] (default 10_000). *)

val pp_decision : Format.formatter -> decision -> unit
