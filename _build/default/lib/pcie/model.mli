(** The paper's empirical transfer-time model: [T(d) = alpha + beta*d]
    (Equation 1, §III-C).

    [alpha] is the fixed per-transfer latency (the cost of the first
    byte); [beta] is the marginal per-byte time, the inverse of the
    sustained bandwidth.  One model instance describes one (direction,
    memory type) combination on one system. *)

type t = private {
  alpha : float;  (** Seconds. *)
  beta : float;  (** Seconds per byte. *)
  direction : Link.direction;
  memory : Link.memory;
}

val create : alpha:float -> beta:float -> direction:Link.direction -> memory:Link.memory -> t
(** @raise Invalid_argument if [alpha < 0] or [beta <= 0]. *)

val predict : t -> bytes:int -> float
(** [alpha + beta * bytes].  @raise Invalid_argument for negative
    sizes. *)

val bandwidth : t -> float
(** [1 / beta] in bytes/s. *)

val latency : t -> float
(** [alpha]. *)

val break_even_bytes : t -> against:t -> int option
(** Size at which [t] becomes at least as fast as [against]
    (e.g. pinned vs pageable): the smallest non-negative integer [d]
    with [predict t d <= predict against d], or [None] when no such
    crossover exists. *)

val pp : Format.formatter -> t -> unit
