(** Host-memory allocation cost model (paper §VII, future work).

    The paper's framework assumes pinned memory and ignores allocation
    cost; its stated future work is to "explore the tradeoffs of using
    different types of memory (i.e., pinned and pageable) and account
    for the overhead of memory allocation".  This module supplies the
    missing cost model:

    - pageable allocations ([malloc]) are cheap to request but pay a
      soft page fault on first touch of each page;
    - pinned allocations ([cudaHostAlloc]) pay a driver call plus
      per-page pinning (page-table walk + locking), considerably more
      expensive — which only amortizes if the buffer is reused across
      many transfers. *)

type cost_model = {
  page_bytes : int;  (** Host page size. *)
  malloc_base : float;  (** Fixed cost of a pageable allocation, s. *)
  malloc_per_page : float;  (** First-touch fault cost per page, s. *)
  pin_base : float;  (** Fixed cost of a pinned allocation (driver
                         call), s. *)
  pin_per_page : float;  (** Per-page pinning cost, s. *)
}

val default_cost_model : cost_model
(** Calibrated to the CUDA 2.3-era testbed: pinned allocation is
    roughly an order of magnitude more expensive per byte than a
    faulted-in [malloc]. *)

val allocation_time : ?model:cost_model -> Link.memory -> bytes:int -> float
(** One-time cost of allocating (and first-touching) a buffer of the
    given size.  @raise Invalid_argument for negative sizes. *)

val amortized_time :
  ?model:cost_model -> Link.memory -> bytes:int -> reuses:int -> float
(** {!allocation_time} spread over [reuses] uses of the buffer.
    @raise Invalid_argument when [reuses < 1]. *)
