type t = { alpha : float; beta : float; direction : Link.direction; memory : Link.memory }

let create ~alpha ~beta ~direction ~memory =
  if alpha < 0.0 || not (Float.is_finite alpha) then invalid_arg "Model.create: bad alpha";
  if beta <= 0.0 || not (Float.is_finite beta) then invalid_arg "Model.create: bad beta";
  { alpha; beta; direction; memory }

let predict t ~bytes =
  if bytes < 0 then invalid_arg "Model.predict: negative size";
  t.alpha +. (t.beta *. float_of_int bytes)

let bandwidth t = 1.0 /. t.beta

let latency t = t.alpha

let break_even_bytes t ~against =
  (* t.alpha + t.beta*d <= against.alpha + against.beta*d
     <=> d * (t.beta - against.beta) <= against.alpha - t.alpha *)
  let beta_diff = t.beta -. against.beta in
  let alpha_diff = against.alpha -. t.alpha in
  if beta_diff = 0.0 then if alpha_diff >= 0.0 then Some 0 else None
  else if beta_diff < 0.0 then begin
    (* t is asymptotically faster: crossover at d >= alpha_diff/beta_diff
       (negative slope flips the inequality).  Rounding the division can
       land one element off in either direction; fix up against the
       actual predictions. *)
    let candidate = max 0 (int_of_float (Float.ceil (alpha_diff /. beta_diff))) in
    let wins d = predict t ~bytes:d <= predict against ~bytes:d in
    let rec back d = if d > 0 && wins (d - 1) then back (d - 1) else d in
    let rec forward d = if wins d then d else forward (d + 1) in
    Some (if wins candidate then back candidate else forward candidate)
  end
  else if alpha_diff < 0.0 then None
  else
    (* t is faster only up to alpha_diff / beta_diff; it is at least as
       fast at d = 0. *)
    Some 0

let pp ppf t =
  Format.fprintf ppf "%s/%s: T(d) = %a + d / %a"
    (Link.direction_name t.direction)
    (Link.memory_name t.memory) Gpp_util.Units.pp_time t.alpha Gpp_util.Units.pp_bandwidth
    (bandwidth t)
