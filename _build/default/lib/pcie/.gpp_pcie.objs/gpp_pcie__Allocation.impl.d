lib/pcie/allocation.ml: Gpp_util Link
