lib/pcie/calibrate.ml: Float Gpp_util Link List Model
