lib/pcie/link.mli: Gpp_arch
