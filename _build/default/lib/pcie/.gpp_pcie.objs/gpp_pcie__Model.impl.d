lib/pcie/model.ml: Float Format Gpp_util Link
