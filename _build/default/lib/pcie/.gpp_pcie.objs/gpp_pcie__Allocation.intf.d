lib/pcie/allocation.mli: Link
