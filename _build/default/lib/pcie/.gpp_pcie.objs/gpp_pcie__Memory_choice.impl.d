lib/pcie/memory_choice.ml: Allocation Calibrate Float Format Gpp_util Link Model
