lib/pcie/model.mli: Format Link
