lib/pcie/memory_choice.mli: Allocation Calibrate Format Link Model
