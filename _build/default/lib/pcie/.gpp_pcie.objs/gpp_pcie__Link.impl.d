lib/pcie/link.ml: Float Gpp_arch Gpp_util List
