lib/pcie/calibrate.mli: Link Model
