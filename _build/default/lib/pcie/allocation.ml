type cost_model = {
  page_bytes : int;
  malloc_base : float;
  malloc_per_page : float;
  pin_base : float;
  pin_per_page : float;
}

let default_cost_model =
  {
    page_bytes = 4096;
    malloc_base = Gpp_util.Units.us 2.0;
    malloc_per_page = Gpp_util.Units.us 0.25 (* soft fault + zeroing *);
    pin_base = Gpp_util.Units.us 80.0 (* driver call *);
    pin_per_page = Gpp_util.Units.us 1.1 (* lock + table update *);
  }

let pages model bytes = (bytes + model.page_bytes - 1) / model.page_bytes

let allocation_time ?(model = default_cost_model) memory ~bytes =
  if bytes < 0 then invalid_arg "Allocation.allocation_time: negative size";
  let p = float_of_int (pages model bytes) in
  match memory with
  | Link.Pageable -> model.malloc_base +. (p *. model.malloc_per_page)
  | Link.Pinned -> model.pin_base +. (p *. model.pin_per_page)

let amortized_time ?model memory ~bytes ~reuses =
  if reuses < 1 then invalid_arg "Allocation.amortized_time: reuses must be >= 1";
  allocation_time ?model memory ~bytes /. float_of_int reuses
