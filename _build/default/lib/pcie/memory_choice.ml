type models = { pinned : Model.t; pageable : Model.t }

let models_for ?protocol link direction =
  {
    pinned = Calibrate.calibrate ?protocol link direction Link.Pinned;
    pageable = Calibrate.calibrate ?protocol link direction Link.Pageable;
  }

type decision = {
  bytes : int;
  reuses : int;
  memory : Link.memory;
  pinned_total : float;
  pageable_total : float;
  saving : float;
}

let total ?allocation model memory ~bytes ~reuses =
  Allocation.amortized_time ?model:allocation memory ~bytes ~reuses
  +. Model.predict model ~bytes

let choose ?allocation models ~bytes ~reuses =
  let pinned_total = total ?allocation models.pinned Link.Pinned ~bytes ~reuses in
  let pageable_total = total ?allocation models.pageable Link.Pageable ~bytes ~reuses in
  let memory = if pinned_total <= pageable_total then Link.Pinned else Link.Pageable in
  {
    bytes;
    reuses;
    memory;
    pinned_total;
    pageable_total;
    saving = Float.abs (pinned_total -. pageable_total);
  }

let break_even_reuses ?allocation ?(max_reuses = 10_000) models ~bytes =
  (* The pinned-vs-pageable total is monotone in the reuse count (only
     the amortized allocation term changes), so scan geometrically and
     refine linearly. *)
  let wins reuses = (choose ?allocation models ~bytes ~reuses).memory = Link.Pinned in
  if not (wins max_reuses) then None
  else begin
    let rec coarse hi = if wins hi then hi else coarse (min max_reuses (hi * 2)) in
    let first_win = if wins 1 then 1 else coarse 2 in
    let rec refine n = if n > 1 && wins (n - 1) then refine (n - 1) else n in
    Some (refine first_win)
  end

let pp_decision ppf d =
  Format.fprintf ppf "%s x%d: %s (pinned %a, pageable %a, saves %a)"
    (Gpp_util.Units.bytes_to_string d.bytes)
    d.reuses
    (Link.memory_name d.memory)
    Gpp_util.Units.pp_time d.pinned_total Gpp_util.Units.pp_time d.pageable_total
    Gpp_util.Units.pp_time d.saving
