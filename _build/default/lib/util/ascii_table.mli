(** Plain-text table rendering for the experiment harness.

    The paper's Tables I and II are regenerated as monospace tables; this
    module handles column sizing, alignment, separators, and optional
    row-group rules (e.g. one rule between applications). *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?title:string -> columns:(string * align) list -> unit -> t
(** [create ~columns ()] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a data row.  @raise Invalid_argument if the cell count does
    not match the column count. *)

val add_separator : t -> unit
(** Append a horizontal rule (used between application groups). *)

val render : t -> string
(** Render to a string, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)
