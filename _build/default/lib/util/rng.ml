type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then apply
   the variant-13 finalizer of MurmurHash3. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  (* Mix once more so that split streams do not share prefixes with the
     parent stream. *)
  create (Int64.logxor seed 0xD1B54A32D192ED03L)

let float t =
  (* 53 high-quality bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let gaussian t ~mu ~sigma =
  assert (sigma >= 0.0);
  (* Box-Muller; guard against log 0 by nudging u1 away from zero. *)
  let u1 = Float.max (float t) 1e-300 in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal_noise t ~sigma = exp (gaussian t ~mu:0.0 ~sigma)

let int t ~bound =
  assert (bound > 0);
  (* Rejection-free for our simulation purposes: modulo bias is
     negligible for bounds far below 2^64. *)
  let raw = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem raw (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L
