(** Terminal line/scatter plots for regenerating the paper's figures.

    Each figure in the evaluation is emitted both as a data listing and
    as a coarse character plot so the shape (crossovers, convergence,
    log-log slopes) is visible directly in the experiment output. *)

type scale = Linear | Log
(** Axis scale.  [Log] matches the paper's log-scaled transfer-size and
    transfer-time axes (Figures 2-5). *)

type series = {
  label : string;
  glyph : char;  (** Character used to draw this series' points. *)
  points : (float * float) list;
}

val series : label:string -> glyph:char -> (float * float) list -> series

type t

val create :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  t
(** Build a plot.  Defaults: 72x20 character grid, linear axes.  Points
    with non-positive coordinates on a log axis are dropped. *)

val render : t -> string
(** Render the plot (axes, ticks, legend) to a string. *)

val print : t -> unit
