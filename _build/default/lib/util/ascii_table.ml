type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?title ~columns () =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Ascii_table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths =
    let init = List.map String.length t.headers in
    List.fold_left
      (fun widths row ->
        match row with
        | Separator -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      init rows
  in
  let buf = Buffer.create 1024 in
  let rule () =
    List.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let line align_per_cell cells =
    List.iteri
      (fun i (w, (a, c)) ->
        Buffer.add_string buf (if i = 0 then "| " else "| ");
        Buffer.add_string buf (pad a w c);
        Buffer.add_char buf ' ')
      (List.combine widths (List.combine align_per_cell cells));
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | None -> ()
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  rule ();
  line (List.map (fun _ -> Center) t.aligns) t.headers;
  rule ();
  List.iter
    (fun row -> match row with Separator -> rule () | Cells cells -> line t.aligns cells)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
