lib/util/ascii_plot.mli:
