lib/util/rng.mli:
