lib/util/units.mli: Format
