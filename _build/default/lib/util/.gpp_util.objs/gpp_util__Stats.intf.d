lib/util/stats.mli:
