lib/util/units.ml: Float Format String
