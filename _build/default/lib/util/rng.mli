(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulated hardware substrate (PCIe
    transfer-time noise, DRAM timing jitter, ...) is driven by this
    splittable generator so that every experiment in the paper
    reproduction is bit-for-bit repeatable from a seed.

    The implementation is SplitMix64 (Steele, Lea & Flood; also the
    seeding generator of Java's [SplittableRandom]).  It is small, has
    good statistical quality for simulation purposes, and supports cheap
    stream splitting, which we use to give independent noise streams to
    independent simulated devices. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    future stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** [uniform t ~lo ~hi] is uniform in [\[lo, hi)].  Requires
    [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution using the
    Box-Muller transform.  [sigma] must be non-negative. *)

val lognormal_noise : t -> sigma:float -> float
(** [lognormal_noise t ~sigma] is a multiplicative noise factor with
    median 1.0: [exp (gaussian ~mu:0 ~sigma)].  Used to perturb simulated
    timings the way real measurements wobble. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin. *)
