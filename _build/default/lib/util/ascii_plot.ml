type scale = Linear | Log

type series = { label : string; glyph : char; points : (float * float) list }

let series ~label ~glyph points = { label; glyph; points }

type t = {
  width : int;
  height : int;
  x_scale : scale;
  y_scale : scale;
  title : string;
  x_label : string;
  y_label : string;
  all : series list;
}

let create ?(width = 72) ?(height = 20) ?(x_scale = Linear) ?(y_scale = Linear) ~title ~x_label
    ~y_label all =
  { width; height; x_scale; y_scale; title; x_label; y_label; all }

let transform scale v = match scale with Linear -> v | Log -> log10 v

let usable scale (x, y) =
  let ok s v = match s with Linear -> Float.is_finite v | Log -> v > 0.0 && Float.is_finite v in
  let xs, ys = scale in
  ok xs x && ok ys y

let render t =
  let pts =
    List.concat_map
      (fun s -> List.filter (usable (t.x_scale, t.y_scale)) s.points)
      t.all
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  (match pts with
  | [] -> Buffer.add_string buf "  (no plottable points)\n"
  | _ :: _ ->
      let txs = List.map (fun (x, _) -> transform t.x_scale x) pts in
      let tys = List.map (fun (_, y) -> transform t.y_scale y) pts in
      let x_lo, x_hi = Stats.min_max txs in
      let y_lo, y_hi = Stats.min_max tys in
      (* Avoid a degenerate range when all points share a coordinate. *)
      let widen lo hi = if lo = hi then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
      let x_lo, x_hi = widen x_lo x_hi in
      let y_lo, y_hi = widen y_lo y_hi in
      let grid = Array.make_matrix t.height t.width ' ' in
      let place s =
        List.iter
          (fun p ->
            if usable (t.x_scale, t.y_scale) p then begin
              let x, y = p in
              let tx = transform t.x_scale x and ty = transform t.y_scale y in
              let col =
                int_of_float
                  (Float.round ((tx -. x_lo) /. (x_hi -. x_lo) *. float_of_int (t.width - 1)))
              in
              let row =
                t.height - 1
                - int_of_float
                    (Float.round ((ty -. y_lo) /. (y_hi -. y_lo) *. float_of_int (t.height - 1)))
              in
              if row >= 0 && row < t.height && col >= 0 && col < t.width then
                (* Later series overwrite earlier ones; mark collisions
                   between different glyphs with '*'. *)
                grid.(row).(col) <-
                  (if grid.(row).(col) = ' ' || grid.(row).(col) = s.glyph then s.glyph else '*')
            end)
          s.points
      in
      List.iter place t.all;
      let fmt_tick scale v =
        let raw = match scale with Linear -> v | Log -> 10.0 ** v in
        if Float.abs raw >= 1e5 || (Float.abs raw < 1e-3 && raw <> 0.0) then
          Printf.sprintf "%.1e" raw
        else Printf.sprintf "%.3g" raw
      in
      let y_tick_width =
        max
          (String.length (fmt_tick t.y_scale y_lo))
          (String.length (fmt_tick t.y_scale y_hi))
      in
      Buffer.add_string buf (Printf.sprintf "  y: %s\n" t.y_label);
      Array.iteri
        (fun i row ->
          let frac = 1.0 -. (float_of_int i /. float_of_int (t.height - 1)) in
          let y_val = y_lo +. (frac *. (y_hi -. y_lo)) in
          let tick =
            if i = 0 || i = t.height - 1 || i = t.height / 2 then fmt_tick t.y_scale y_val else ""
          in
          Buffer.add_string buf (Printf.sprintf "  %*s |" y_tick_width tick);
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (Printf.sprintf "  %*s +" y_tick_width "");
      Buffer.add_string buf (String.make t.width '-');
      Buffer.add_char buf '\n';
      let lo_s = fmt_tick t.x_scale x_lo and hi_s = fmt_tick t.x_scale x_hi in
      let gap = max 1 (t.width - String.length lo_s - String.length hi_s) in
      Buffer.add_string buf
        (Printf.sprintf "  %*s  %s%s%s\n" y_tick_width "" lo_s (String.make gap ' ') hi_s);
      Buffer.add_string buf (Printf.sprintf "  x: %s\n" t.x_label));
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  [%c] %s\n" s.glyph s.label))
    t.all;
  Buffer.contents buf

let print t = print_string (render t)
