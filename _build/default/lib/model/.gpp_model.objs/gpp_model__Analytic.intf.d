lib/model/analytic.mli: Characteristics Format Gpp_arch Occupancy
