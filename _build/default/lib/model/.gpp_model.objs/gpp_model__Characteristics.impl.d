lib/model/characteristics.ml: Format Gpp_arch List Printf Result
