lib/model/occupancy.ml: Characteristics Format Gpp_arch List Printf
