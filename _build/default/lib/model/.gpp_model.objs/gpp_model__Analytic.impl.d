lib/model/analytic.ml: Characteristics Float Format Gpp_arch Gpp_util Occupancy Result
