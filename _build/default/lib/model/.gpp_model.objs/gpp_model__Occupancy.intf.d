lib/model/occupancy.mli: Characteristics Format Gpp_arch
