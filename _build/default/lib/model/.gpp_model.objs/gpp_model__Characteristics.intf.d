lib/model/characteristics.mli: Format Gpp_arch
