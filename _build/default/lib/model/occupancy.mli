(** GPU occupancy calculation.

    How many thread blocks fit concurrently on one SM, limited by the
    thread budget, the block-slot budget, the register file, and shared
    memory — and hence how many warps are available to hide memory
    latency. *)

type limiter = Threads | Blocks | Registers | Shared_memory

type t = {
  blocks_per_sm : int;
  active_warps : int;  (** Concurrent warps per SM. *)
  occupancy : float;  (** [active_warps / peak_warps_per_sm], in (0, 1]. *)
  limiter : limiter;  (** The resource that caps {!blocks_per_sm}. *)
}

val compute :
  gpu:Gpp_arch.Gpu.t ->
  threads_per_block:int ->
  registers_per_thread:int ->
  shared_mem_per_block:int ->
  (t, string) result
(** [Error] when even a single block exceeds some SM resource. *)

val of_characteristics : gpu:Gpp_arch.Gpu.t -> Characteristics.t -> (t, string) result

val limiter_name : limiter -> string

val pp : Format.formatter -> t -> unit
