type limiter = Threads | Blocks | Registers | Shared_memory

type t = { blocks_per_sm : int; active_warps : int; occupancy : float; limiter : limiter }

let compute ~gpu ~threads_per_block ~registers_per_thread ~shared_mem_per_block =
  let gpu : Gpp_arch.Gpu.t = gpu in
  if threads_per_block <= 0 then Error "threads_per_block must be positive"
  else if threads_per_block > gpu.max_threads_per_block then
    Error
      (Printf.sprintf "block of %d threads exceeds device limit %d" threads_per_block
         gpu.max_threads_per_block)
  else begin
    let by_threads = gpu.max_threads_per_sm / threads_per_block in
    let by_blocks = gpu.max_blocks_per_sm in
    let regs_per_block = registers_per_thread * threads_per_block in
    let by_registers = if regs_per_block = 0 then by_blocks else gpu.registers_per_sm / regs_per_block in
    let by_shared =
      if shared_mem_per_block = 0 then by_blocks else gpu.shared_mem_per_sm / shared_mem_per_block
    in
    let candidates =
      [ (by_threads, Threads); (by_blocks, Blocks); (by_registers, Registers); (by_shared, Shared_memory) ]
    in
    let blocks_per_sm, limiter =
      List.fold_left (fun (bn, bl) (n, l) -> if n < bn then (n, l) else (bn, bl))
        (List.hd candidates) (List.tl candidates)
    in
    if blocks_per_sm = 0 then
      Error
        (Printf.sprintf "a single block (%d threads, %d regs/thread, %d B shared) does not fit an SM"
           threads_per_block registers_per_thread shared_mem_per_block)
    else begin
      let warps_per_block = (threads_per_block + gpu.warp_size - 1) / gpu.warp_size in
      let active_warps = blocks_per_sm * warps_per_block in
      let peak = Gpp_arch.Gpu.peak_warps_per_sm gpu in
      Ok
        {
          blocks_per_sm;
          active_warps;
          occupancy = float_of_int active_warps /. float_of_int peak;
          limiter;
        }
    end
  end

let of_characteristics ~gpu (c : Characteristics.t) =
  compute ~gpu ~threads_per_block:c.threads_per_block
    ~registers_per_thread:c.registers_per_thread ~shared_mem_per_block:c.shared_mem_per_block

let limiter_name = function
  | Threads -> "threads"
  | Blocks -> "block slots"
  | Registers -> "registers"
  | Shared_memory -> "shared memory"

let pp ppf t =
  Format.fprintf ppf "%d blocks/SM, %d warps (%.0f%% occupancy, limited by %s)" t.blocks_per_sm
    t.active_warps (t.occupancy *. 100.0) (limiter_name t.limiter)
