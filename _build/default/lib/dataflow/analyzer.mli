(** The data usage analyzer (paper §III-B).

    Walks the program's kernel invocation sequence, maintaining per-array
    regions of data already produced on the device:

    - array sections {e read but not previously written} on the GPU must
      be transferred from the CPU — their union, per array, is the input
      transfer set;
    - the union of all {e written} sections is the output transfer set,
      minus arrays the user hints are temporaries;
    - sparse or indirectly accessed arrays are handled conservatively:
      the whole array is assumed referenced (unless the exact-sparse
      policy is enabled, an ablation);
    - each array is transferred separately (§III-B), so the plan is a
      list of per-array transfers;
    - for iterative schedules the transfer set is independent of the
      iteration count: inputs move once before the first iteration,
      outputs once after the last (§IV-B). *)

type direction = To_device | From_device

type transfer = {
  array : string;
  direction : direction;
  bytes : int;
  elements : int;
  conservative : bool;
      (** Whether the size comes from the whole-array fallback rather
          than exact section analysis. *)
}

type policy = {
  sparse_exact : bool;
      (** Use the declared population ([nnz]) of sparse arrays instead
          of their full capacity.  Default [false]: the paper's
          conservative assumption. *)
}

val default_policy : policy

type plan = {
  program_name : string;
  policy : policy;
  to_device : transfer list;
  from_device : transfer list;
}

val analyze : ?policy:policy -> Gpp_skeleton.Program.t -> plan
(** Run the analysis.  The program should be validated first; undeclared
    arrays raise [Invalid_argument]. *)

val input_bytes : plan -> int

val output_bytes : plan -> int

val total_bytes : plan -> int

val transfers : plan -> transfer list
(** Inputs then outputs, in plan order. *)

val direction_name : direction -> string

val pp_plan : Format.formatter -> plan -> unit
