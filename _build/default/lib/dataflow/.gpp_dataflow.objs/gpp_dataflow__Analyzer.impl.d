lib/dataflow/analyzer.ml: Format Gpp_brs Gpp_skeleton Gpp_util List Map Printf String
