lib/dataflow/analyzer.mli: Format Gpp_skeleton
