module Registry = Gpp_workloads.Registry
module Grophecy = Gpp_core.Grophecy

type t = {
  session : Grophecy.session;
  machine : Gpp_arch.Machine.t;
  instances : (Registry.instance * Grophecy.report) list;
}

let create ?(machine = Gpp_arch.Machine.argonne_node) ?seed () =
  let session = Grophecy.init ?seed machine in
  let instances =
    List.map
      (fun (inst : Registry.instance) ->
        match Grophecy.analyze session (inst.program 1) with
        | Ok report -> (inst, report)
        | Error e ->
            invalid_arg (Printf.sprintf "Context.create: %s failed: %s" (Registry.key inst) e))
      Registry.paper_instances
  in
  { session; machine; instances }

let session t = t.session

let machine t = t.machine

let instances t = t.instances

let report t ~app ~size =
  match
    List.find_opt (fun ((i : Registry.instance), _) -> i.app = app && i.size = size) t.instances
  with
  | Some (_, report) -> report
  | None -> raise Not_found

let reports_of_app t app =
  List.filter_map
    (fun ((i : Registry.instance), report) -> if i.app = app then Some (i.size, report) else None)
    t.instances

let apps t =
  List.fold_left
    (fun acc ((i : Registry.instance), _) -> if List.mem i.app acc then acc else acc @ [ i.app ])
    [] t.instances
