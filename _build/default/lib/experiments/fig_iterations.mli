(** Figures 8, 10, 12: measured and predicted GPU speedup as a function
    of the iteration count, for each iterative application's largest
    data size.

    The transfer set is independent of the iteration count (§IV-B), so
    as iterations grow the transfer overhead amortizes, the measured
    speedup rises toward the transfer-free limit, and the two prediction
    variants converge.  The paper reports how long the transfer-aware
    prediction stays "more than twice as accurate" than the kernel-only
    one: CFD up to 18 iterations, HotSpot 70, SRAD 228. *)

type point = {
  iterations : int;
  measured : float;
  with_transfer : float;
  kernel_only : float;
}

val default_iterations : int list

val points : Context.t -> app:string -> size:string -> iterations:int list -> point list

val limit : Context.t -> app:string -> size:string -> Gpp_core.Evaluation.speedups
(** Speedups as iterations approach infinity. *)

val twice_as_accurate_until : Context.t -> app:string -> size:string -> int
(** Largest simulated iteration count for which the transfer-aware
    prediction's error is at most half the kernel-only prediction's
    error (scanning iteration counts 1, 2, 3, ...). *)

val run : Context.t -> app:string -> size:string -> id:string -> Output.t

val run_cfd : Context.t -> Output.t

val run_hotspot : Context.t -> Output.t

val run_srad : Context.t -> Output.t
