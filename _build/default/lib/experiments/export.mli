(** CSV export of experiment data.

    Every figure/table has a typed data accessor; this module writes
    them as plain CSV so the plots can be regenerated with external
    tooling (gnuplot, matplotlib, a spreadsheet).  One file per
    experiment, with a header row. *)

val csv_of_rows : header:string list -> string list list -> string
(** Render rows as CSV.  Fields containing commas, quotes, or newlines
    are quoted and inner quotes doubled (RFC 4180). *)

val fig2_csv : Context.t -> string
(** Columns: bytes, pinned/pageable x h2d/d2h measured means, model
    predictions. *)

val fig3_csv : Context.t -> string

val fig4_csv : Context.t -> string

val fig5_csv : Context.t -> string

val fig6_csv : Context.t -> string

val table1_csv : Context.t -> string

val table2_csv : Context.t -> string

val speedup_csv : Context.t -> app:string -> string
(** Figures 7/9/11 data for one application. *)

val iterations_csv : Context.t -> app:string -> size:string -> string
(** Figures 8/10/12 data. *)

val write_all : Context.t -> dir:string -> (string * string) list
(** Write every export into [dir] (created if missing) and return the
    [(filename, path)] pairs written. *)
