module Evaluation = Gpp_core.Evaluation
module Grophecy = Gpp_core.Grophecy

type point = {
  iterations : int;
  measured : float;
  with_transfer : float;
  kernel_only : float;
}

let default_iterations = [ 1; 2; 3; 5; 8; 12; 18; 27; 40; 60; 90; 140; 220; 350; 500 ]

let points ctx ~app ~size ~iterations =
  let report = Context.report ctx ~app ~size in
  List.map
    (fun (p : Evaluation.iteration_point) ->
      {
        iterations = p.Evaluation.iterations;
        measured = p.Evaluation.speedups.Evaluation.measured;
        with_transfer = p.Evaluation.speedups.Evaluation.with_transfer;
        kernel_only = p.Evaluation.speedups.Evaluation.kernel_only;
      })
    (Grophecy.iteration_sweep report ~iterations)

let limit ctx ~app ~size =
  let report = Context.report ctx ~app ~size in
  Evaluation.limit_speedups report.projection report.measurement

let twice_as_accurate_until ctx ~app ~size =
  let report = Context.report ctx ~app ~size in
  let rec scan n best =
    if n > 1000 then best
    else begin
      let point =
        List.hd (Grophecy.iteration_sweep report ~iterations:[ n ])
      in
      let s = point.Evaluation.speedups in
      let err predicted =
        Gpp_util.Stats.error_magnitude ~predicted ~measured:s.Evaluation.measured
      in
      let with_transfer = err s.Evaluation.with_transfer
      and kernel_only = err s.Evaluation.kernel_only in
      if with_transfer *. 2.0 <= kernel_only then scan (n + 1) n else best
    end
  in
  scan 1 0

let run ctx ~app ~size ~id =
  let pts = points ctx ~app ~size ~iterations:default_iterations in
  let lim = limit ctx ~app ~size in
  let table =
    Gpp_util.Ascii_table.create
      ~title:(Printf.sprintf "GPU speedup vs iteration count: %s (%s)" app size)
      ~columns:
        [
          ("Iterations", Gpp_util.Ascii_table.Right);
          ("Measured", Gpp_util.Ascii_table.Right);
          ("Predicted (kernel+transfer)", Gpp_util.Ascii_table.Right);
          ("Predicted (kernel only)", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          string_of_int p.iterations;
          Printf.sprintf "%.2fx" p.measured;
          Printf.sprintf "%.2fx" p.with_transfer;
          Printf.sprintf "%.2fx" p.kernel_only;
        ])
    pts;
  Gpp_util.Ascii_table.add_separator table;
  Gpp_util.Ascii_table.add_row table
    [
      "limit";
      Printf.sprintf "%.2fx" lim.Evaluation.measured;
      Printf.sprintf "%.2fx" lim.Evaluation.with_transfer;
      Printf.sprintf "%.2fx" lim.Evaluation.kernel_only;
    ];
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log
      ~title:"Speedup vs iterations (transfer cost amortizes)" ~x_label:"iterations"
      ~y_label:"speedup (x)"
      [
        Gpp_util.Ascii_plot.series ~label:"measured" ~glyph:'m'
          (List.map (fun p -> (float_of_int p.iterations, p.measured)) pts);
        Gpp_util.Ascii_plot.series ~label:"predicted kernel+transfer" ~glyph:'+'
          (List.map (fun p -> (float_of_int p.iterations, p.with_transfer)) pts);
        Gpp_util.Ascii_plot.series ~label:"predicted kernel only" ~glyph:'k'
          (List.map (fun p -> (float_of_int p.iterations, p.kernel_only)) pts);
      ]
  in
  let limit_error =
    Gpp_util.Stats.error_magnitude ~predicted:lim.Evaluation.with_transfer
      ~measured:lim.Evaluation.measured
  in
  let digest =
    Printf.sprintf
      "transfer-aware prediction stays twice as accurate up to %d iterations\n\
       prediction error in the infinite-iteration limit: %.1f%%\n"
      (twice_as_accurate_until ctx ~app ~size)
      limit_error
  in
  Output.make ~id
    ~title:(Printf.sprintf "Speedup of %s (%s) as a function of iteration count" app size)
    ~body:(Gpp_util.Ascii_table.render table ^ digest ^ "\n" ^ Gpp_util.Ascii_plot.render plot)

let run_cfd ctx = run ctx ~app:"cfd" ~size:"233K" ~id:"fig8"

let run_hotspot ctx = run ctx ~app:"hotspot" ~size:"1024 x 1024" ~id:"fig10"

let run_srad ctx = run ctx ~app:"srad" ~size:"4096 x 4096" ~id:"fig12"
