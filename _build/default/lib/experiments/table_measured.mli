(** Table I: measured kernel and data transfer times, the percent of
    total time due to transfer, and the input/output transfer sizes, for
    every application and data size.

    The paper's headline observation from this table: for every workload
    except HotSpot's smallest grid, transfer time exceeds kernel time. *)

type row = {
  app : string;
  size : string;
  kernel_ms : float;
  transfer_ms : float;
  percent_transfer : float;
  input_mib : float;
  output_mib : float;
}

val rows : Context.t -> row list

val run : Context.t -> Output.t
