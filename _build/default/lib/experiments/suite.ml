type entry = { id : string; title : string; run : Context.t -> Output.t }

let paper =
  [
    {
      id = "fig2";
      title = "Transfer time for pinned and pageable memory";
      run = Fig_transfer_time.run;
    };
    { id = "fig3"; title = "Speedup of pinned over pageable transfers"; run = Fig_pinned_speedup.run };
    { id = "fig4"; title = "Error magnitude of the transfer model"; run = Fig_model_error.run };
    { id = "table1"; title = "Measured kernel/transfer times and sizes"; run = Table_measured.run };
    { id = "fig5"; title = "Predicted vs measured application transfers"; run = Fig_app_transfers.run };
    { id = "fig6"; title = "Transfer error vs kernel error"; run = Fig_error_scatter.run };
    { id = "fig7"; title = "CFD speedup across data sizes"; run = Fig_speedups.run_cfd };
    { id = "fig8"; title = "CFD speedup vs iteration count"; run = Fig_iterations.run_cfd };
    { id = "fig9"; title = "HotSpot speedup across data sizes"; run = Fig_speedups.run_hotspot };
    { id = "fig10"; title = "HotSpot speedup vs iteration count"; run = Fig_iterations.run_hotspot };
    { id = "fig11"; title = "SRAD speedup across data sizes"; run = Fig_speedups.run_srad };
    { id = "fig12"; title = "SRAD speedup vs iteration count"; run = Fig_iterations.run_srad };
    { id = "table2"; title = "Error in the predicted GPU speedup"; run = Table_speedup_error.run };
  ]

let ablations =
  [
    {
      id = "ablation-calibration-size";
      title = "Calibration-size sensitivity";
      run = Ablations.run_calibration_size;
    };
    {
      id = "ablation-regression";
      title = "Two-point calibration vs least squares";
      run = Ablations.run_regression;
    };
    { id = "ablation-batching"; title = "Per-array vs batched transfers"; run = Ablations.run_batching };
    {
      id = "ablation-memory-type";
      title = "Pinned vs pageable assumption";
      run = Ablations.run_memory_type;
    };
    {
      id = "ablation-sparse-policy";
      title = "Conservative vs exact sparse transfers";
      run = Ablations.run_sparse_policy;
    };
  ]

let extensions =
  [
    {
      id = "extension-memory-choice";
      title = "Pinned vs pageable with allocation overhead";
      run = Extensions.run_memory_choice;
    };
    {
      id = "extension-fusion";
      title = "Temporal kernel fusion for iterative stencils";
      run = Extensions.run_fusion;
    };
    {
      id = "extension-overlap";
      title = "Transfer/compute overlap bound";
      run = Extensions.run_overlap;
    };
    {
      id = "extension-hardware";
      title = "Projection across machine generations";
      run = Extensions.run_hardware;
    };
    {
      id = "extension-roofline";
      title = "Model vs simulator roofline sweep";
      run = Extensions.run_roofline;
    };
  ]

let all = paper @ ablations @ extensions

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
