module Link = Gpp_pcie.Link
module Calibrate = Gpp_pcie.Calibrate
module Units = Gpp_util.Units

type point = {
  bytes : int;
  pinned_h2d : float;
  pageable_h2d : float;
  pinned_d2h : float;
  pageable_d2h : float;
  predicted_h2d : float;
  predicted_d2h : float;
}

let sizes () = Calibrate.power_of_two_sizes ~max_bytes:(512 * Units.mib) ()

let points ctx =
  let session = Context.session ctx in
  let link = session.Gpp_core.Grophecy.calibration_link in
  let mean = Link.mean_transfer_time link ~runs:10 in
  List.map
    (fun bytes ->
      {
        bytes;
        pinned_h2d = mean Link.Host_to_device Link.Pinned ~bytes;
        pageable_h2d = mean Link.Host_to_device Link.Pageable ~bytes;
        pinned_d2h = mean Link.Device_to_host Link.Pinned ~bytes;
        pageable_d2h = mean Link.Device_to_host Link.Pageable ~bytes;
        predicted_h2d = Gpp_pcie.Model.predict session.Gpp_core.Grophecy.h2d ~bytes;
        predicted_d2h = Gpp_pcie.Model.predict session.Gpp_core.Grophecy.d2h ~bytes;
      })
    (sizes ())

let run ctx =
  let pts = points ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Mean transfer time (10 runs each)"
      ~columns:
        [
          ("Size", Gpp_util.Ascii_table.Right);
          ("Pinned to GPU", Gpp_util.Ascii_table.Right);
          ("Pageable to GPU", Gpp_util.Ascii_table.Right);
          ("Pinned from GPU", Gpp_util.Ascii_table.Right);
          ("Pageable from GPU", Gpp_util.Ascii_table.Right);
          ("Model to GPU", Gpp_util.Ascii_table.Right);
          ("Model from GPU", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          Units.bytes_to_string p.bytes;
          Units.time_to_string p.pinned_h2d;
          Units.time_to_string p.pageable_h2d;
          Units.time_to_string p.pinned_d2h;
          Units.time_to_string p.pageable_d2h;
          Units.time_to_string p.predicted_h2d;
          Units.time_to_string p.predicted_d2h;
        ])
    pts;
  let series label glyph select =
    Gpp_util.Ascii_plot.series ~label ~glyph
      (List.map (fun p -> (float_of_int p.bytes, select p)) pts)
  in
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log ~y_scale:Gpp_util.Ascii_plot.Log
      ~title:"Transfer time vs size (log-log)" ~x_label:"transfer size (bytes)"
      ~y_label:"time (s)"
      [
        series "pinned to GPU" 'p' (fun p -> p.pinned_h2d);
        series "pageable to GPU" 'g' (fun p -> p.pageable_h2d);
        series "model (pinned to GPU)" '.' (fun p -> p.predicted_h2d);
      ]
  in
  Output.make ~id:"fig2"
    ~title:"Transfer time for pinned and pageable memory (predicted overlaid)"
    ~body:(Gpp_util.Ascii_table.render table ^ "\n" ^ Gpp_util.Ascii_plot.render plot)
