(** Extension experiments: the paper's §VII future-work items, realized.

    - memory-type choice with allocation-overhead modeling
      ([Gpp_pcie.Memory_choice]),
    - temporal kernel fusion for iterative stencils
      ([Gpp_transform.Fusion]),
    - transfer/compute overlap with CUDA-stream-style chunking
      ([Gpp_core.Overlap]),
    - validation across a wider range of hardware systems. *)

val run_memory_choice : Context.t -> Output.t
(** Per-workload pinned/pageable decisions under the allocation cost
    model, plus the reuse counts at which pinning starts to pay. *)

val run_fusion : Context.t -> Output.t
(** Fusion-factor sweep for iterated HotSpot: launches, per-launch
    time, and total kernel time per factor. *)

val run_overlap : Context.t -> Output.t
(** Streamed-transfer bound per workload: serial vs overlapped total,
    best chunk count, bottleneck stage. *)

val run_hardware : Context.t -> Output.t
(** Projected end-to-end speedups of every workload across machine
    generations (the paper's testbed vs a Fermi-era node). *)

type roofline_point = {
  flops_per_thread : float;
  model_time : float;  (** Analytic projection. *)
  sim_time : float;  (** Transaction-level simulation (noise-free). *)
  model_bound : Gpp_model.Analytic.bound;
}

val roofline_points : ?flops:float list -> Context.t -> roofline_point list
(** Synthetic arithmetic-intensity sweep at fixed memory traffic:
    exposes the memory-bound plateau, the compute-bound slope, and how
    closely the analytic model tracks the simulator through the
    transition. *)

val run_roofline : Context.t -> Output.t

val all : (Context.t -> Output.t) list
