module Analyzer = Gpp_dataflow.Analyzer

type row = {
  app : string;
  size : string;
  kernel_ms : float;
  transfer_ms : float;
  percent_transfer : float;
  input_mib : float;
  output_mib : float;
}

let rows ctx =
  List.map
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      let m = report.measurement in
      let kernel = m.Gpp_core.Measurement.kernel_time
      and transfer = m.Gpp_core.Measurement.transfer_time in
      {
        app = inst.app;
        size = inst.size;
        kernel_ms = Gpp_util.Units.ms_of_seconds kernel;
        transfer_ms = Gpp_util.Units.ms_of_seconds transfer;
        percent_transfer = 100.0 *. transfer /. (kernel +. transfer);
        input_mib =
          Gpp_util.Units.mib_of_bytes (Analyzer.input_bytes report.projection.Gpp_core.Projection.plan);
        output_mib =
          Gpp_util.Units.mib_of_bytes
            (Analyzer.output_bytes report.projection.Gpp_core.Projection.plan);
      })
    (Context.instances ctx)

let run ctx =
  let table =
    Gpp_util.Ascii_table.create
      ~title:"Measured kernel and transfer times; transfer sizes (1 iteration)"
      ~columns:
        [
          ("Application", Gpp_util.Ascii_table.Left);
          ("Data Size", Gpp_util.Ascii_table.Left);
          ("Kernel (ms)", Gpp_util.Ascii_table.Right);
          ("Transfer (ms)", Gpp_util.Ascii_table.Right);
          ("Percent Transfer", Gpp_util.Ascii_table.Right);
          ("Input (MiB)", Gpp_util.Ascii_table.Right);
          ("Output (MiB)", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  let previous_app = ref "" in
  List.iter
    (fun r ->
      if !previous_app <> "" && !previous_app <> r.app then Gpp_util.Ascii_table.add_separator table;
      previous_app := r.app;
      Gpp_util.Ascii_table.add_row table
        [
          r.app;
          r.size;
          Printf.sprintf "%.1f" r.kernel_ms;
          Printf.sprintf "%.1f" r.transfer_ms;
          Printf.sprintf "%.0f" r.percent_transfer;
          Printf.sprintf "%.1f" r.input_mib;
          Printf.sprintf "%.1f" r.output_mib;
        ])
    (rows ctx);
  let exceeds =
    List.filter (fun r -> r.transfer_ms > r.kernel_ms) (rows ctx) |> List.length
  in
  let digest =
    Printf.sprintf
      "transfer exceeds kernel time for %d of %d workload instances\n\
       (paper: all but HotSpot 64 x 64)\n"
      exceeds
      (List.length (rows ctx))
  in
  Output.make ~id:"table1" ~title:"Measured kernel/transfer times and transfer sizes"
    ~body:(Gpp_util.Ascii_table.render table ^ digest)
