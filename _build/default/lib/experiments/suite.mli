(** The full experiment suite: every table and figure of the paper plus
    the ablations, in presentation order. *)

type entry = {
  id : string;
  title : string;
  run : Context.t -> Output.t;
}

val paper : entry list
(** Figures 2-12 and Tables I-II. *)

val ablations : entry list

val extensions : entry list
(** The paper's §VII future-work items, implemented. *)

val all : entry list

val find : string -> entry option
(** Lookup by id (["fig2"] ... ["table2"], ["ablation-..."]). *)

val ids : unit -> string list
