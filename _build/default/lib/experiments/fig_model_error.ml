module Stats = Gpp_util.Stats

type point = { bytes : int; h2d_error : float; d2h_error : float }

type summary = {
  mean_h2d : float;
  mean_d2h : float;
  max_h2d : float;
  max_d2h : float;
  mean_large_h2d : float;
  mean_large_d2h : float;
}

let points ctx =
  List.map
    (fun (p : Fig_transfer_time.point) ->
      {
        bytes = p.bytes;
        h2d_error = Stats.error_magnitude ~predicted:p.predicted_h2d ~measured:p.pinned_h2d;
        d2h_error = Stats.error_magnitude ~predicted:p.predicted_d2h ~measured:p.pinned_d2h;
      })
    (Fig_transfer_time.points ctx)

let summary ctx =
  let pts = points ctx in
  let h2d = List.map (fun p -> p.h2d_error) pts and d2h = List.map (fun p -> p.d2h_error) pts in
  let large = List.filter (fun p -> p.bytes > Gpp_util.Units.mib) pts in
  {
    mean_h2d = Stats.mean h2d;
    mean_d2h = Stats.mean d2h;
    max_h2d = snd (Stats.min_max h2d);
    max_d2h = snd (Stats.min_max d2h);
    mean_large_h2d = Stats.mean (List.map (fun p -> p.h2d_error) large);
    mean_large_d2h = Stats.mean (List.map (fun p -> p.d2h_error) large);
  }

type repeatability = { h2d : float; d2h : float }

let repeatability ctx =
  let link = (Context.session ctx).Gpp_core.Grophecy.calibration_link in
  let sizes =
    Gpp_pcie.Calibrate.power_of_two_sizes ~max_bytes:(512 * Gpp_util.Units.mib) ()
  in
  let error_of direction =
    let sweep () =
      Gpp_pcie.Calibrate.measure_sweep link direction Gpp_pcie.Link.Pinned ~sizes
    in
    let first = sweep () and second = sweep () in
    Stats.mean_error_magnitude
      (List.map2 (fun (_, predicted) (_, measured) -> (predicted, measured)) first second)
  in
  { h2d = error_of Gpp_pcie.Link.Host_to_device; d2h = error_of Gpp_pcie.Link.Device_to_host }

let run ctx =
  let pts = points ctx in
  let s = summary ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Transfer model error magnitude (pinned)"
      ~columns:
        [
          ("Size", Gpp_util.Ascii_table.Right);
          ("CPU-to-GPU error", Gpp_util.Ascii_table.Right);
          ("GPU-to-CPU error", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          Gpp_util.Units.bytes_to_string p.bytes;
          Printf.sprintf "%.2f%%" p.h2d_error;
          Printf.sprintf "%.2f%%" p.d2h_error;
        ])
    pts;
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log
      ~title:"Prediction error vs transfer size" ~x_label:"transfer size (bytes)"
      ~y_label:"error magnitude (%)"
      [
        Gpp_util.Ascii_plot.series ~label:"CPU-to-GPU" ~glyph:'h'
          (List.map (fun p -> (float_of_int p.bytes, p.h2d_error)) pts);
        Gpp_util.Ascii_plot.series ~label:"GPU-to-CPU" ~glyph:'d'
          (List.map (fun p -> (float_of_int p.bytes, p.d2h_error)) pts);
      ]
  in
  let r = repeatability ctx in
  let digest =
    Printf.sprintf
      "mean error: CPU-to-GPU %.1f%% (paper 2.0%%), GPU-to-CPU %.1f%% (paper 0.8%%)\n\
       max error:  CPU-to-GPU %.1f%% (paper 6.4%%), GPU-to-CPU %.1f%% (paper 3.3%%)\n\
       mean error above 1 MiB: %.2f%% / %.2f%% (paper: essentially zero)\n\
       run-to-run repeatability (sweep 1 predicting sweep 2): %.1f%% / %.1f%%\n\
       (paper 1.0%% / 0.7%% - most of the small-size error is inherent variation)\n"
      s.mean_h2d s.mean_d2h s.max_h2d s.max_d2h s.mean_large_h2d s.mean_large_d2h r.h2d r.d2h
  in
  Output.make ~id:"fig4" ~title:"Error magnitude of the PCIe transfer-time model"
    ~body:(Gpp_util.Ascii_table.render table ^ digest ^ "\n" ^ Gpp_util.Ascii_plot.render plot)
