(** Figure 5: predicted versus measured time of every individual
    application transfer, across all applications and data sizes.
    Points below the y = x line are transfers that ran slower than
    predicted — the paper observes a handful of such outliers (bimodally
    slow CFD transfers, §V-A), which the application link's rare
    slow-transfer mode reproduces. *)

type point = {
  app : string;
  size : string;
  array_name : string;
  direction : Gpp_dataflow.Analyzer.direction;
  bytes : int;
  predicted : float;
  measured : float;
}

val points : Context.t -> point list

val overall_error : Context.t -> float
(** Mean error magnitude across every transfer (paper: 7.6 %). *)

val run : Context.t -> Output.t
