type row = { size : string; measured : float; with_transfer : float; kernel_only : float }

let rows ctx ~app =
  List.map
    (fun (size, (report : Gpp_core.Grophecy.report)) ->
      {
        size;
        measured = report.speedups.Gpp_core.Evaluation.measured;
        with_transfer = report.speedups.Gpp_core.Evaluation.with_transfer;
        kernel_only = report.speedups.Gpp_core.Evaluation.kernel_only;
      })
    (Context.reports_of_app ctx app)

let run ctx ~app ~id =
  let rs = rows ctx ~app in
  let table =
    Gpp_util.Ascii_table.create
      ~title:(Printf.sprintf "GPU speedup for %s across data sizes" app)
      ~columns:
        [
          ("Data size", Gpp_util.Ascii_table.Left);
          ("Measured", Gpp_util.Ascii_table.Right);
          ("Predicted (kernel+transfer)", Gpp_util.Ascii_table.Right);
          ("Predicted (kernel only)", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun r ->
      Gpp_util.Ascii_table.add_row table
        [
          r.size;
          Printf.sprintf "%.2fx" r.measured;
          Printf.sprintf "%.2fx" r.with_transfer;
          Printf.sprintf "%.2fx" r.kernel_only;
        ])
    rs;
  let indexed = List.mapi (fun i r -> (float_of_int (i + 1), r)) rs in
  let plot =
    Gpp_util.Ascii_plot.create
      ~title:(Printf.sprintf "%s speedup by data-size index" app)
      ~x_label:"data-size index" ~y_label:"speedup (x)"
      [
        Gpp_util.Ascii_plot.series ~label:"measured" ~glyph:'m'
          (List.map (fun (i, r) -> (i, r.measured)) indexed);
        Gpp_util.Ascii_plot.series ~label:"predicted kernel+transfer" ~glyph:'+'
          (List.map (fun (i, r) -> (i, r.with_transfer)) indexed);
        Gpp_util.Ascii_plot.series ~label:"predicted kernel only" ~glyph:'k'
          (List.map (fun (i, r) -> (i, r.kernel_only)) indexed);
      ]
  in
  Output.make ~id
    ~title:(Printf.sprintf "Measured and predicted GPU speedup for %s" app)
    ~body:(Gpp_util.Ascii_table.render table ^ "\n" ^ Gpp_util.Ascii_plot.render plot)

let run_cfd ctx = run ctx ~app:"cfd" ~id:"fig7"

let run_hotspot ctx = run ctx ~app:"hotspot" ~id:"fig9"

let run_srad ctx = run ctx ~app:"srad" ~id:"fig11"
