type point = { app : string; size : string; kernel_error : float; transfer_error : float }

let points ctx =
  List.map
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      {
        app = inst.app;
        size = inst.size;
        kernel_error = report.kernel_error;
        transfer_error = report.transfer_error;
      })
    (Context.instances ctx)

let run ctx =
  let pts = points ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Overall prediction errors per workload"
      ~columns:
        [
          ("App", Gpp_util.Ascii_table.Left);
          ("Data size", Gpp_util.Ascii_table.Left);
          ("Kernel error", Gpp_util.Ascii_table.Right);
          ("Transfer error", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [ p.app; p.size; Printf.sprintf "%.1f%%" p.kernel_error; Printf.sprintf "%.1f%%" p.transfer_error ])
    pts;
  let glyph_of_app = function
    | "cfd" -> 'c'
    | "hotspot" -> 'h'
    | "srad" -> 's'
    | "stassuij" -> 't'
    | _ -> '?'
  in
  let by_app =
    List.fold_left
      (fun acc p -> if List.mem_assoc p.app acc then acc else (p.app, glyph_of_app p.app) :: acc)
      [] pts
    |> List.rev
  in
  let plot =
    Gpp_util.Ascii_plot.create ~title:"Transfer error vs kernel error"
      ~x_label:"kernel prediction error (%)" ~y_label:"transfer prediction error (%)"
      (List.map
         (fun (app, glyph) ->
           Gpp_util.Ascii_plot.series ~label:app ~glyph
             (List.filter_map
                (fun p -> if p.app = app then Some (p.kernel_error, p.transfer_error) else None)
                pts))
         by_app)
  in
  Output.make ~id:"fig6" ~title:"Transfer prediction error vs kernel prediction error"
    ~body:(Gpp_util.Ascii_table.render table ^ "\n" ^ Gpp_util.Ascii_plot.render plot)
