lib/experiments/fig_speedups.ml: Context Gpp_core Gpp_util List Output Printf
