lib/experiments/fig_speedups.mli: Context Output
