lib/experiments/fig_iterations.mli: Context Gpp_core Output
