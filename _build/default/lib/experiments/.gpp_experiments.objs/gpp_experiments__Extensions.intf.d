lib/experiments/extensions.mli: Context Gpp_model Output
