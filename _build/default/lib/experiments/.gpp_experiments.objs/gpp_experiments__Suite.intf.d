lib/experiments/suite.mli: Context Output
