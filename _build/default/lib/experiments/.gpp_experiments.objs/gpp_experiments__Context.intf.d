lib/experiments/context.mli: Gpp_arch Gpp_core Gpp_workloads
