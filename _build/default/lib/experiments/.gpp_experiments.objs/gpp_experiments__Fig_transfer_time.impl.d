lib/experiments/fig_transfer_time.ml: Context Gpp_core Gpp_pcie Gpp_util List Output
