lib/experiments/table_speedup_error.ml: Context Gpp_core Gpp_util Gpp_workloads List Output Printf
