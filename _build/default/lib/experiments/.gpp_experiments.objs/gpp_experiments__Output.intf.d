lib/experiments/output.mli:
