lib/experiments/output.ml: Printf String
