lib/experiments/fig_error_scatter.mli: Context Output
