lib/experiments/table_measured.mli: Context Output
