lib/experiments/fig_iterations.ml: Context Gpp_core Gpp_util List Output Printf
