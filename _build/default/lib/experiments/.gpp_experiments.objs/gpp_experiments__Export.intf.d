lib/experiments/export.mli: Context
