lib/experiments/fig_error_scatter.ml: Context Gpp_core Gpp_util Gpp_workloads List Output Printf
