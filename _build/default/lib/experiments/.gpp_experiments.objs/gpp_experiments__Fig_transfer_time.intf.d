lib/experiments/fig_transfer_time.mli: Context Output
