lib/experiments/extensions.ml: Context Gpp_arch Gpp_core Gpp_dataflow Gpp_gpusim Gpp_model Gpp_pcie Gpp_transform Gpp_util Gpp_workloads List Output Printf
