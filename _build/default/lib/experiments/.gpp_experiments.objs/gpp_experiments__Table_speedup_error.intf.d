lib/experiments/table_speedup_error.mli: Context Output
