lib/experiments/fig_pinned_speedup.mli: Context Output
