lib/experiments/ablations.ml: Context Gpp_core Gpp_dataflow Gpp_pcie Gpp_skeleton Gpp_util Gpp_workloads List Output Printf
