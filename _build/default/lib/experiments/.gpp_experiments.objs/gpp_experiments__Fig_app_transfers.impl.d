lib/experiments/fig_app_transfers.ml: Context Gpp_core Gpp_dataflow Gpp_util Gpp_workloads List Output Printf
