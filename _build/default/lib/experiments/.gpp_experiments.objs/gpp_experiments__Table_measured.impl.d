lib/experiments/table_measured.ml: Context Gpp_core Gpp_dataflow Gpp_util Gpp_workloads List Output Printf
