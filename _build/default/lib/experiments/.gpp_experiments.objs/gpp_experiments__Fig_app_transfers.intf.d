lib/experiments/fig_app_transfers.mli: Context Gpp_dataflow Output
