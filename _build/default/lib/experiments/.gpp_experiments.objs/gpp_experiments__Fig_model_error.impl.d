lib/experiments/fig_model_error.ml: Context Fig_transfer_time Gpp_core Gpp_pcie Gpp_util List Output Printf
