lib/experiments/fig_model_error.mli: Context Output
