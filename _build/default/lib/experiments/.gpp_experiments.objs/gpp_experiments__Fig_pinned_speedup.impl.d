lib/experiments/fig_pinned_speedup.ml: Fig_transfer_time Gpp_pcie Gpp_util List Option Output Printf
