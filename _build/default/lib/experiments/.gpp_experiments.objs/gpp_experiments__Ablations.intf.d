lib/experiments/ablations.mli: Context Output
