lib/experiments/context.ml: Gpp_arch Gpp_core Gpp_workloads List Printf
