(** Figure 2: transfer time for pinned and pageable memory across
    power-of-two sizes (1 B to 512 MiB), both directions, with the
    linear model's prediction overlaid for pinned transfers.  Both axes
    log-scaled in the paper. *)

type point = {
  bytes : int;
  pinned_h2d : float;
  pageable_h2d : float;
  pinned_d2h : float;
  pageable_d2h : float;
  predicted_h2d : float;
  predicted_d2h : float;
}

val points : Context.t -> point list
(** 10-run mean measured times per size, plus model predictions. *)

val run : Context.t -> Output.t
