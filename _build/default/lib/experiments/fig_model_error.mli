(** Figure 4 and §V-A validation: error magnitude of the linear transfer
    model against fresh measurements, per size and direction, for pinned
    transfers.

    Paper values on the real testbed: maximum 6.4 % (CPU-to-GPU) and
    3.3 % (GPU-to-CPU); means 2.0 % and 0.8 %; error concentrated at
    small sizes and essentially zero above 1 MB. *)

type point = { bytes : int; h2d_error : float; d2h_error : float }

type summary = {
  mean_h2d : float;
  mean_d2h : float;
  max_h2d : float;
  max_d2h : float;
  mean_large_h2d : float;  (** Mean error restricted to sizes > 1 MiB. *)
  mean_large_d2h : float;
}

val points : Context.t -> point list

val summary : Context.t -> summary

type repeatability = { h2d : float; d2h : float }
(** Mean error magnitude when one full measurement sweep predicts a
    second, independent sweep — the paper's bound on how much of the
    model error is inherent run-to-run variation (§V-A: 1.0 % and
    0.7 %). *)

val repeatability : Context.t -> repeatability

val run : Context.t -> Output.t
