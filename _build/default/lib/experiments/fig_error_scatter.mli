(** Figure 6: per application/data-size, the overall transfer prediction
    error plotted against the overall kernel prediction error.  In the
    paper, CFD's kernel error dominates (its irregular gathers defeat
    the analytic model) while the stencils sit near the origin with
    transfer error roughly twice kernel error at small sizes. *)

type point = {
  app : string;
  size : string;
  kernel_error : float;  (** Error magnitude over the summed kernel time. *)
  transfer_error : float;  (** Error magnitude over the summed transfer time. *)
}

val points : Context.t -> point list

val run : Context.t -> Output.t
