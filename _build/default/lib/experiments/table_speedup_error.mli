(** Table II: error magnitude of the predicted GPU speedup using only
    the kernel time, only the transfer time, or both, for every
    application and data set, with per-application averages and the two
    overall averages (weighting data sets equally vs applications
    equally).

    Paper headline (application-weighted averages): kernel-only 255 %,
    transfer-only 68 %, kernel+transfer 9 %.  Also carries the §V-B.4
    Stassuij narrative: kernel-only predicts a win (1.10x) where the
    real outcome is a 0.39x slowdown. *)

type row = {
  app : string;
  size : string;
  kernel_only : float;
  transfer_only : float;
  with_transfer : float;
}

type summary = {
  rows : row list;
  app_averages : (string * row) list;  (** Per-application mean rows. *)
  average_data_sets : row;  (** All rows weighted equally. *)
  average_applications : row;  (** Application means weighted equally. *)
}

val summary : Context.t -> summary

val stassuij_narrative : Context.t -> string
(** The decision-flip story: predicted vs actual speedup with and
    without the transfer model. *)

val run : Context.t -> Output.t
