(** Ablation studies of GROPHECY++'s design choices (DESIGN.md).

    These go beyond the paper's figures: each isolates one decision the
    paper made (or deferred to future work) and quantifies it on the
    same workloads. *)

val run_calibration_size : Context.t -> Output.t
(** Footnote 5: the large calibration transfer's size "is chosen rather
    arbitrarily; any size larger than a few megabytes would be
    sufficient".  Calibrate beta with large sizes from 64 KiB to
    512 MiB and report the resulting model error. *)

val run_regression : Context.t -> Output.t
(** Two-point calibration (the paper's choice) versus an ordinary
    least-squares fit over the full size sweep. *)

val run_batching : Context.t -> Output.t
(** §III-B: each array is transferred separately; batching all arrays
    into one transfer per direction would save one latency term per
    extra array.  Reports the predicted saving per workload. *)

val run_memory_type : Context.t -> Output.t
(** §III-C / future work: the framework assumes pinned memory.  Price
    every workload's transfer plan with the pageable-memory model
    instead and report the slowdown the assumption avoids. *)

val run_sparse_policy : Context.t -> Output.t
(** §III-B: conservative whole-array transfer for sparse data versus
    the exact-population policy, on a synthetic sparse-gather
    workload. *)

val all : (Context.t -> Output.t) list
