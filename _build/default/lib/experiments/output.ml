type t = { id : string; title : string; body : string }

let make ~id ~title ~body = { id; title; body }

let print t =
  let rule = String.make 74 '=' in
  Printf.printf "%s\n%s: %s\n%s\n%s\n" rule (String.uppercase_ascii t.id) t.title rule t.body
