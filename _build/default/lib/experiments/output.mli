(** Rendered experiment artifacts. *)

type t = {
  id : string;  (** Short identifier, e.g. ["fig2"], ["table1"]. *)
  title : string;  (** Paper caption summary. *)
  body : string;  (** Preformatted text: tables and/or plots. *)
}

val make : id:string -> title:string -> body:string -> t

val print : t -> unit
(** Write to stdout with a header rule. *)
