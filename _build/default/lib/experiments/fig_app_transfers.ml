module Analyzer = Gpp_dataflow.Analyzer
module Projection = Gpp_core.Projection
module Measurement = Gpp_core.Measurement

type point = {
  app : string;
  size : string;
  array_name : string;
  direction : Analyzer.direction;
  bytes : int;
  predicted : float;
  measured : float;
}

let points ctx =
  List.concat_map
    (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
      List.map2
        (fun (pt : Projection.priced_transfer) (tm : Measurement.transfer_measurement) ->
          {
            app = inst.app;
            size = inst.size;
            array_name = pt.Projection.transfer.Analyzer.array;
            direction = pt.Projection.transfer.Analyzer.direction;
            bytes = pt.Projection.transfer.Analyzer.bytes;
            predicted = pt.Projection.time;
            measured = tm.Measurement.time;
          })
        report.projection.Projection.transfers report.measurement.Measurement.transfers)
    (Context.instances ctx)

let overall_error ctx =
  Gpp_util.Stats.mean_error_magnitude
    (List.map (fun p -> (p.predicted, p.measured)) (points ctx))

let run ctx =
  let pts = points ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Per-transfer prediction (pinned memory)"
      ~columns:
        [
          ("App", Gpp_util.Ascii_table.Left);
          ("Data size", Gpp_util.Ascii_table.Left);
          ("Array", Gpp_util.Ascii_table.Left);
          ("Dir", Gpp_util.Ascii_table.Left);
          ("Bytes", Gpp_util.Ascii_table.Right);
          ("Predicted", Gpp_util.Ascii_table.Right);
          ("Measured", Gpp_util.Ascii_table.Right);
          ("Error", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          p.app;
          p.size;
          p.array_name;
          (match p.direction with Analyzer.To_device -> "in" | Analyzer.From_device -> "out");
          Gpp_util.Units.bytes_to_string p.bytes;
          Gpp_util.Units.time_to_string p.predicted;
          Gpp_util.Units.time_to_string p.measured;
          Printf.sprintf "%.1f%%"
            (Gpp_util.Stats.error_magnitude ~predicted:p.predicted ~measured:p.measured);
        ])
    pts;
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log ~y_scale:Gpp_util.Ascii_plot.Log
      ~title:"Predicted vs measured transfer time (y = x is perfect)"
      ~x_label:"measured (s)" ~y_label:"predicted (s)"
      [
        Gpp_util.Ascii_plot.series ~label:"transfers" ~glyph:'o'
          (List.map (fun p -> (p.measured, p.predicted)) pts);
        Gpp_util.Ascii_plot.series ~label:"y = x" ~glyph:'.'
          (List.map (fun p -> (p.measured, p.measured)) pts);
      ]
  in
  let digest =
    Printf.sprintf "overall mean transfer prediction error: %.1f%% (paper: 7.6%%)\n"
      (overall_error ctx)
  in
  Output.make ~id:"fig5" ~title:"Predicted vs measured time for every application transfer"
    ~body:(Gpp_util.Ascii_table.render table ^ digest ^ "\n" ^ Gpp_util.Ascii_plot.render plot)
