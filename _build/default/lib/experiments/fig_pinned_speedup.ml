module Link = Gpp_pcie.Link

type point = { bytes : int; h2d_speedup : float; d2h_speedup : float }

let points ctx =
  List.map
    (fun (p : Fig_transfer_time.point) ->
      {
        bytes = p.bytes;
        h2d_speedup = p.pageable_h2d /. p.pinned_h2d;
        d2h_speedup = p.pageable_d2h /. p.pinned_d2h;
      })
    (Fig_transfer_time.points ctx)

let crossover_h2d ctx =
  List.find_opt (fun p -> p.h2d_speedup >= 1.0) (points ctx) |> Option.map (fun p -> p.bytes)

let run ctx =
  let pts = points ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Pinned-over-pageable transfer speedup"
      ~columns:
        [
          ("Size", Gpp_util.Ascii_table.Right);
          ("CPU-to-GPU", Gpp_util.Ascii_table.Right);
          ("GPU-to-CPU", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  List.iter
    (fun p ->
      Gpp_util.Ascii_table.add_row table
        [
          Gpp_util.Units.bytes_to_string p.bytes;
          Printf.sprintf "%.2fx" p.h2d_speedup;
          Printf.sprintf "%.2fx" p.d2h_speedup;
        ])
    pts;
  let plot =
    Gpp_util.Ascii_plot.create ~x_scale:Gpp_util.Ascii_plot.Log
      ~title:"Pinned speedup vs transfer size" ~x_label:"transfer size (bytes)"
      ~y_label:"pageable time / pinned time"
      [
        Gpp_util.Ascii_plot.series ~label:"CPU-to-GPU" ~glyph:'h'
          (List.map (fun p -> (float_of_int p.bytes, p.h2d_speedup)) pts);
        Gpp_util.Ascii_plot.series ~label:"GPU-to-CPU" ~glyph:'d'
          (List.map (fun p -> (float_of_int p.bytes, p.d2h_speedup)) pts);
      ]
  in
  let crossover =
    match crossover_h2d ctx with
    | Some bytes ->
        Printf.sprintf "CPU-to-GPU: pinned becomes faster at %s (paper: ~2 KB)\n"
          (Gpp_util.Units.bytes_to_string bytes)
    | None -> "CPU-to-GPU: pinned never overtakes pageable (unexpected)\n"
  in
  Output.make ~id:"fig3" ~title:"Speedup of pinned relative to pageable transfers"
    ~body:(Gpp_util.Ascii_table.render table ^ crossover ^ "\n" ^ Gpp_util.Ascii_plot.render plot)
