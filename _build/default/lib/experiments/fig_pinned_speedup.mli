(** Figure 3: speedup of pinned-memory transfers over pageable-memory
    transfers across sizes, per direction.  The paper's observation:
    pinned wins everywhere except CPU-to-GPU transfers below ~2 KB. *)

type point = { bytes : int; h2d_speedup : float; d2h_speedup : float }

val points : Context.t -> point list

val crossover_h2d : Context.t -> int option
(** Smallest measured size at which pinned is at least as fast as
    pageable for CPU-to-GPU transfers. *)

val run : Context.t -> Output.t
