(** Shared experiment state.

    Calibrates one session on the paper's testbed preset and runs the
    full GROPHECY++ pipeline (projection + simulated measurement) once
    per application/data-size pair; every table and figure then reads
    from these cached reports, exactly as the paper derives all results
    from one set of runs. *)

type t

val create : ?machine:Gpp_arch.Machine.t -> ?seed:int64 -> unit -> t
(** Analyze every Table I instance at one iteration.  Defaults: the
    Argonne node, a fixed seed. *)

val session : t -> Gpp_core.Grophecy.session

val machine : t -> Gpp_arch.Machine.t

val instances : t -> (Gpp_workloads.Registry.instance * Gpp_core.Grophecy.report) list
(** Paper order. *)

val report : t -> app:string -> size:string -> Gpp_core.Grophecy.report
(** @raise Not_found for an unknown pair. *)

val reports_of_app : t -> string -> (string * Gpp_core.Grophecy.report) list
(** [(size, report)] pairs for one application. *)

val apps : t -> string list
