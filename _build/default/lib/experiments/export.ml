let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let csv_of_rows ~header rows =
  let line fields = String.concat "," (List.map escape fields) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let f = Printf.sprintf "%.9g"

let fig2_csv ctx =
  csv_of_rows
    ~header:
      [
        "bytes";
        "pinned_h2d_s";
        "pageable_h2d_s";
        "pinned_d2h_s";
        "pageable_d2h_s";
        "model_h2d_s";
        "model_d2h_s";
      ]
    (List.map
       (fun (p : Fig_transfer_time.point) ->
         [
           string_of_int p.bytes;
           f p.pinned_h2d;
           f p.pageable_h2d;
           f p.pinned_d2h;
           f p.pageable_d2h;
           f p.predicted_h2d;
           f p.predicted_d2h;
         ])
       (Fig_transfer_time.points ctx))

let fig3_csv ctx =
  csv_of_rows ~header:[ "bytes"; "h2d_speedup"; "d2h_speedup" ]
    (List.map
       (fun (p : Fig_pinned_speedup.point) ->
         [ string_of_int p.bytes; f p.h2d_speedup; f p.d2h_speedup ])
       (Fig_pinned_speedup.points ctx))

let fig4_csv ctx =
  csv_of_rows ~header:[ "bytes"; "h2d_error_pct"; "d2h_error_pct" ]
    (List.map
       (fun (p : Fig_model_error.point) ->
         [ string_of_int p.bytes; f p.h2d_error; f p.d2h_error ])
       (Fig_model_error.points ctx))

let fig5_csv ctx =
  csv_of_rows
    ~header:[ "app"; "size"; "array"; "direction"; "bytes"; "predicted_s"; "measured_s" ]
    (List.map
       (fun (p : Fig_app_transfers.point) ->
         [
           p.app;
           p.size;
           p.array_name;
           Gpp_dataflow.Analyzer.direction_name p.direction;
           string_of_int p.bytes;
           f p.predicted;
           f p.measured;
         ])
       (Fig_app_transfers.points ctx))

let fig6_csv ctx =
  csv_of_rows ~header:[ "app"; "size"; "kernel_error_pct"; "transfer_error_pct" ]
    (List.map
       (fun (p : Fig_error_scatter.point) ->
         [ p.app; p.size; f p.kernel_error; f p.transfer_error ])
       (Fig_error_scatter.points ctx))

let table1_csv ctx =
  csv_of_rows
    ~header:
      [ "app"; "size"; "kernel_ms"; "transfer_ms"; "percent_transfer"; "input_mib"; "output_mib" ]
    (List.map
       (fun (r : Table_measured.row) ->
         [
           r.app;
           r.size;
           f r.kernel_ms;
           f r.transfer_ms;
           f r.percent_transfer;
           f r.input_mib;
           f r.output_mib;
         ])
       (Table_measured.rows ctx))

let table2_csv ctx =
  let s = Table_speedup_error.summary ctx in
  csv_of_rows
    ~header:[ "app"; "size"; "kernel_only_pct"; "transfer_only_pct"; "with_transfer_pct" ]
    (List.map
       (fun (r : Table_speedup_error.row) ->
         [ r.app; r.size; f r.kernel_only; f r.transfer_only; f r.with_transfer ])
       (s.Table_speedup_error.rows
       @ List.map snd s.Table_speedup_error.app_averages
       @ [ s.Table_speedup_error.average_data_sets; s.Table_speedup_error.average_applications ]))

let speedup_csv ctx ~app =
  csv_of_rows ~header:[ "size"; "measured"; "with_transfer"; "kernel_only" ]
    (List.map
       (fun (r : Fig_speedups.row) ->
         [ r.size; f r.measured; f r.with_transfer; f r.kernel_only ])
       (Fig_speedups.rows ctx ~app))

let iterations_csv ctx ~app ~size =
  csv_of_rows ~header:[ "iterations"; "measured"; "with_transfer"; "kernel_only" ]
    (List.map
       (fun (p : Fig_iterations.point) ->
         [ string_of_int p.iterations; f p.measured; f p.with_transfer; f p.kernel_only ])
       (Fig_iterations.points ctx ~app ~size ~iterations:Fig_iterations.default_iterations))

let write_all ctx ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let exports =
    [
      ("fig2.csv", fig2_csv ctx);
      ("fig3.csv", fig3_csv ctx);
      ("fig4.csv", fig4_csv ctx);
      ("fig5.csv", fig5_csv ctx);
      ("fig6.csv", fig6_csv ctx);
      ("table1.csv", table1_csv ctx);
      ("table2.csv", table2_csv ctx);
      ("fig7_cfd.csv", speedup_csv ctx ~app:"cfd");
      ("fig9_hotspot.csv", speedup_csv ctx ~app:"hotspot");
      ("fig11_srad.csv", speedup_csv ctx ~app:"srad");
      ("fig8_cfd_iterations.csv", iterations_csv ctx ~app:"cfd" ~size:"233K");
      ("fig10_hotspot_iterations.csv", iterations_csv ctx ~app:"hotspot" ~size:"1024 x 1024");
      ("fig12_srad_iterations.csv", iterations_csv ctx ~app:"srad" ~size:"4096 x 4096");
    ]
  in
  List.map
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      (name, path))
    exports
