(** Figures 7, 9, 11: measured and predicted GPU speedup across data
    sizes for one application, with and without the transfer model.

    The paper's shape: the kernel-only prediction sits several times
    above the measured speedup, while the transfer-aware prediction
    tracks it closely. *)

type row = {
  size : string;
  measured : float;
  with_transfer : float;
  kernel_only : float;
}

val rows : Context.t -> app:string -> row list

val run : Context.t -> app:string -> id:string -> Output.t
(** [id] selects the paper figure number: ["fig7"] (CFD), ["fig9"]
    (HotSpot), ["fig11"] (SRAD). *)

val run_cfd : Context.t -> Output.t

val run_hotspot : Context.t -> Output.t

val run_srad : Context.t -> Output.t
