module Evaluation = Gpp_core.Evaluation

type row = {
  app : string;
  size : string;
  kernel_only : float;
  transfer_only : float;
  with_transfer : float;
}

type summary = {
  rows : row list;
  app_averages : (string * row) list;
  average_data_sets : row;
  average_applications : row;
}

let mean_rows label rows =
  let avg select = Gpp_util.Stats.mean (List.map select rows) in
  {
    app = label;
    size = "Average";
    kernel_only = avg (fun r -> r.kernel_only);
    transfer_only = avg (fun r -> r.transfer_only);
    with_transfer = avg (fun r -> r.with_transfer);
  }

let summary ctx =
  let rows =
    List.map
      (fun ((inst : Gpp_workloads.Registry.instance), (report : Gpp_core.Grophecy.report)) ->
        {
          app = inst.app;
          size = inst.size;
          kernel_only = report.errors.Evaluation.kernel_only;
          transfer_only = report.errors.Evaluation.transfer_only;
          with_transfer = report.errors.Evaluation.with_transfer;
        })
      (Context.instances ctx)
  in
  let app_averages =
    List.map
      (fun app -> (app, mean_rows app (List.filter (fun r -> r.app = app) rows)))
      (Context.apps ctx)
  in
  {
    rows;
    app_averages;
    average_data_sets = mean_rows "all data sets" rows;
    average_applications = mean_rows "all applications" (List.map snd app_averages);
  }

let stassuij_narrative ctx =
  let report = Context.report ctx ~app:"stassuij" ~size:"132 x 2048" in
  let s = report.speedups in
  Printf.sprintf
    "Stassuij decision flip: kernel-only predicts %.2fx (%s), measured is %.2fx (%s);\n\
     the transfer-aware prediction of %.2fx gets the porting decision right.\n\
     (paper: 1.10x predicted kernel-only vs 0.39x actual vs 0.38x predicted with transfer)\n"
    s.Evaluation.kernel_only
    (if s.Evaluation.kernel_only > 1.0 then "a win" else "a loss")
    s.Evaluation.measured
    (if s.Evaluation.measured > 1.0 then "a win" else "a loss")
    s.Evaluation.with_transfer

let run ctx =
  let s = summary ctx in
  let table =
    Gpp_util.Ascii_table.create ~title:"Error magnitude of the predicted GPU speedup"
      ~columns:
        [
          ("Application", Gpp_util.Ascii_table.Left);
          ("Data Set", Gpp_util.Ascii_table.Left);
          ("Kernel Only", Gpp_util.Ascii_table.Right);
          ("Transfer Only", Gpp_util.Ascii_table.Right);
          ("Kernel and Transfer", Gpp_util.Ascii_table.Right);
        ]
      ()
  in
  let add_row (r : row) =
    Gpp_util.Ascii_table.add_row table
      [
        r.app;
        r.size;
        Printf.sprintf "%.0f%%" r.kernel_only;
        Printf.sprintf "%.0f%%" r.transfer_only;
        Printf.sprintf "%.0f%%" r.with_transfer;
      ]
  in
  List.iter
    (fun app ->
      let app_rows = List.filter (fun r -> r.app = app) s.rows in
      List.iter add_row app_rows;
      if List.length app_rows > 1 then add_row (List.assoc app s.app_averages);
      Gpp_util.Ascii_table.add_separator table)
    (Context.apps ctx);
  add_row { s.average_data_sets with app = "Average (data sets)"; size = "" };
  add_row { s.average_applications with app = "Average (applications)"; size = "" };
  let digest =
    Printf.sprintf
      "paper (application-weighted): kernel only 255%%, transfer only 68%%, both 9%%\n\n%s"
      (stassuij_narrative ctx)
  in
  Output.make ~id:"table2" ~title:"Error in the predicted GPU speedup (Table II)"
    ~body:(Gpp_util.Ascii_table.render table ^ digest)
