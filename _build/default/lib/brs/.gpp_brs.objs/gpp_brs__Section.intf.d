lib/brs/section.mli: Format Gpp_skeleton
