lib/brs/region.mli: Format Section
