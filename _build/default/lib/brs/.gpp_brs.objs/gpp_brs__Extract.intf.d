lib/brs/extract.mli: Format Gpp_skeleton Region Section
