lib/brs/region.ml: Format List Section
