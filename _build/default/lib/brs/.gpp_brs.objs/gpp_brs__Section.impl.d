lib/brs/section.ml: Format Gpp_skeleton List
