lib/brs/extract.ml: Format Gpp_skeleton List Printf Region Section String
