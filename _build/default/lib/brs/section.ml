type dim = { lo : int; hi : int; stride : int }

type t = { array : string; dims : dim list }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd a b = gcd (abs a) (abs b)

(* Euclidean remainder: result in [0, b) for b > 0. *)
let emod a b =
  let r = a mod b in
  if r < 0 then r + b else r

let dim ~lo ~hi ~stride =
  if stride < 1 then invalid_arg "Section.dim: stride < 1";
  if lo > hi then None
  else
    let hi = lo + ((hi - lo) / stride * stride) in
    if lo = hi then Some { lo; hi; stride = 1 } else Some { lo; hi; stride }

let dim_exn ~lo ~hi ~stride =
  match dim ~lo ~hi ~stride with
  | Some d -> d
  | None -> invalid_arg "Section.dim_exn: empty progression"

let point x = { lo = x; hi = x; stride = 1 }

let interval ~lo ~hi = dim ~lo ~hi ~stride:1

let dim_size d = ((d.hi - d.lo) / d.stride) + 1

let dim_mem d x = x >= d.lo && x <= d.hi && (x - d.lo) mod d.stride = 0

(* Extended gcd: egcd a b = (g, x, y) with a*x + b*y = g, for a,b >= 0. *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

let dim_intersect d1 d2 =
  let lo_bound = max d1.lo d2.lo and hi_bound = min d1.hi d2.hi in
  if lo_bound > hi_bound then None
  else begin
    (* Solve x = d1.lo (mod s1) and x = d2.lo (mod s2) by CRT. *)
    let s1 = d1.stride and s2 = d2.stride in
    let g, p, _ = egcd s1 s2 in
    let diff = d2.lo - d1.lo in
    if diff mod g <> 0 then None
    else begin
      let lcm = s1 / g * s2 in
      (* x0 = d1.lo + s1 * (diff/g * p mod (s2/g)) satisfies both
         congruences; fold it into [lo_bound, lo_bound + lcm). *)
      let x0 = d1.lo + (s1 * emod (diff / g * p) (s2 / g)) in
      let first = lo_bound + emod (x0 - lo_bound) lcm in
      if first > hi_bound then None else dim ~lo:first ~hi:hi_bound ~stride:lcm
    end
  end

let dim_union d1 d2 =
  let lo = min d1.lo d2.lo and hi = max d1.hi d2.hi in
  if lo = hi then point lo
  else
    let stride = gcd (gcd d1.stride d2.stride) (d1.lo - d2.lo) in
    let stride = if stride = 0 then 1 else stride in
    dim_exn ~lo ~hi ~stride

let dim_union_exact d1 d2 =
  let hull = dim_union d1 d2 in
  let overlap = match dim_intersect d1 d2 with Some d -> dim_size d | None -> 0 in
  dim_size hull = dim_size d1 + dim_size d2 - overlap

let dim_contains ~outer ~inner =
  inner.lo >= outer.lo && inner.hi <= outer.hi
  && (inner.lo - outer.lo) mod outer.stride = 0
  && inner.stride mod outer.stride = 0

let dim_equal d1 d2 = d1.lo = d2.lo && d1.hi = d2.hi && d1.stride = d2.stride

let make array dims =
  if dims = [] then invalid_arg "Section.make: no dimensions";
  { array; dims }

let whole_array (d : Gpp_skeleton.Decl.t) =
  make d.name (List.map (fun extent -> dim_exn ~lo:0 ~hi:(extent - 1) ~stride:1) d.dims)

let size t = List.fold_left (fun acc d -> acc * dim_size d) 1 t.dims

let bytes ~elem_bytes t = size t * elem_bytes

let mem t coords =
  if List.length coords <> List.length t.dims then invalid_arg "Section.mem: rank mismatch";
  List.for_all2 dim_mem t.dims coords

let same_shape a b = a.array = b.array && List.length a.dims = List.length b.dims

let intersect a b =
  if not (same_shape a b) then None
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | (da, db) :: rest -> (
          match dim_intersect da db with None -> None | Some d -> go (d :: acc) rest)
    in
    match go [] (List.combine a.dims b.dims) with
    | None -> None
    | Some dims -> Some { array = a.array; dims }

let union a b =
  if not (same_shape a b) then invalid_arg "Section.union: incompatible sections";
  { array = a.array; dims = List.map2 dim_union a.dims b.dims }

let contains ~outer ~inner =
  same_shape outer inner
  && List.for_all2 (fun o i -> dim_contains ~outer:o ~inner:i) outer.dims inner.dims

let union_exact a b =
  if not (same_shape a b) then false
  else if contains ~outer:a ~inner:b || contains ~outer:b ~inner:a then true
  else
    let pairs = List.combine a.dims b.dims in
    let differing = List.filter (fun (da, db) -> not (dim_equal da db)) pairs in
    match differing with
    | [] -> true
    | [ (da, db) ] -> dim_union_exact da db
    | _ :: _ :: _ -> false

let overlap a b = match intersect a b with Some _ -> true | None -> false

let equal a b = same_shape a b && List.for_all2 dim_equal a.dims b.dims

let pp_dim ppf d =
  if d.lo = d.hi then Format.fprintf ppf "%d" d.lo
  else if d.stride = 1 then Format.fprintf ppf "%d:%d" d.lo d.hi
  else Format.fprintf ppf "%d:%d:%d" d.lo d.hi d.stride

let pp ppf t =
  Format.fprintf ppf "%s[" t.array;
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_string ppf ", ";
      pp_dim ppf d)
    t.dims;
  Format.pp_print_char ppf ']'

let to_string t = Format.asprintf "%a" pp t
