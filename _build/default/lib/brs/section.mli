(** Bounded Regular Sections (Havlak & Kennedy).

    A BRS describes the set of array elements a statement accesses
    across all enclosing loops as, per dimension, a triple
    [lo : hi : stride] — the arithmetic progression
    [{lo, lo+stride, ..., <= hi}].  The paper composes sections with
    INTERSECT (dependence detection) and UNION (merging transfer sets);
    UNION over-approximates with the smallest enclosing regular section,
    as in the original analysis. *)

type dim = private { lo : int; hi : int; stride : int }
(** One dimension's progression.  Invariants established by {!dim}:
    [stride >= 1], [lo <= hi], and [hi] lies on the progression
    ([stride] divides [hi - lo]).  Empty progressions are represented by
    the section-level [option], not by a [dim]. *)

type t = { array : string; dims : dim list }
(** A section of a named array; [dims] are outermost first. *)

val dim : lo:int -> hi:int -> stride:int -> dim option
(** Normalizing constructor: [None] when [lo > hi]; otherwise clamps
    [hi] down to the last element actually on the progression and
    canonicalizes single-element progressions to stride 1.
    @raise Invalid_argument when [stride < 1]. *)

val dim_exn : lo:int -> hi:int -> stride:int -> dim
(** Like {!dim} but @raise Invalid_argument on an empty progression. *)

val point : int -> dim
(** The singleton progression. *)

val interval : lo:int -> hi:int -> dim option
(** Stride-1 progression. *)

val dim_size : dim -> int
(** Number of elements on the progression. *)

val dim_mem : dim -> int -> bool

val dim_intersect : dim -> dim -> dim option
(** Exact intersection of two arithmetic progressions (via the Chinese
    remainder theorem); [None] when disjoint. *)

val dim_union : dim -> dim -> dim
(** Smallest regular progression containing both — the BRS
    over-approximation.  The result's stride is
    [gcd s1 s2 (lo2 - lo1)]. *)

val dim_union_exact : dim -> dim -> bool
(** Whether {!dim_union} introduces no extra elements. *)

val dim_contains : outer:dim -> inner:dim -> bool
(** Every element of [inner] lies on [outer]. *)

val make : string -> dim list -> t
(** @raise Invalid_argument on an empty dimension list. *)

val whole_array : Gpp_skeleton.Decl.t -> t
(** The full declared extent, stride 1 in every dimension. *)

val size : t -> int
(** Number of elements: product of per-dimension sizes. *)

val bytes : elem_bytes:int -> t -> int

val mem : t -> int list -> bool
(** Point membership (one coordinate per dimension).
    @raise Invalid_argument on a rank mismatch. *)

val intersect : t -> t -> t option
(** Exact per-dimension intersection; [None] when any dimension is
    disjoint or the sections name different arrays. *)

val union : t -> t -> t
(** Per-dimension {!dim_union} hull.
    @raise Invalid_argument when the sections name different arrays or
    differ in rank. *)

val union_exact : t -> t -> bool
(** Whether {!union} is exact.  True when the sections differ in at most
    one dimension and that dimension's union is exact — the
    multidimensional hull adds no phantom elements in that case. *)

val contains : outer:t -> inner:t -> bool

val overlap : t -> t -> bool
(** [intersect] is non-empty. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
