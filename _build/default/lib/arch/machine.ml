type t = { name : string; cpu : Cpu.t; gpu : Gpu.t; pcie : Pcie_spec.t }

let argonne_node =
  {
    name = "ALCF data analysis node (Xeon E5405 + Quadro FX 5600)";
    cpu = Cpu.xeon_e5405;
    gpu = Gpu.quadro_fx_5600;
    pcie = Pcie_spec.v1_x16;
  }

let section2b_node =
  {
    name = "paper \u{00a7}II-B example (Xeon E5645 + Quadro FX 5600)";
    cpu = Cpu.xeon_e5645;
    gpu = Gpu.quadro_fx_5600;
    pcie = Pcie_spec.v1_x16;
  }

let gt200_node =
  {
    name = "GT200 node (Xeon E5405 + Tesla C1060)";
    cpu = Cpu.xeon_e5405;
    gpu = Gpu.tesla_c1060;
    pcie = Pcie_spec.v2_x16;
  }

let modern_node =
  {
    name = "Fermi node (Xeon E5645 + Tesla C2050)";
    cpu = Cpu.xeon_e5645;
    gpu = Gpu.tesla_c2050;
    pcie = Pcie_spec.v2_x16;
  }

let presets = [ argonne_node; section2b_node; gt200_node; modern_node ]

let validate t =
  let ( let* ) = Result.bind in
  let* () = Cpu.validate t.cpu in
  let* () = Gpu.validate t.gpu in
  Pcie_spec.validate t.pcie

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@,  %a@,  %a@,  %a@]" t.name Cpu.pp t.cpu Gpu.pp t.gpu Pcie_spec.pp
    t.pcie
