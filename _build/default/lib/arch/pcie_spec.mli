(** PCI Express link specifications.

    These describe the physical link; transfer mechanics (DMA setup,
    pinned vs pageable staging, noise) live in [Gpp_pcie.Link].  The
    derived raw bandwidth accounts for per-lane signalling rate and line
    encoding; the packet efficiency accounts for TLP header overhead at
    the configured maximum payload size. *)

type generation = Gen1 | Gen2 | Gen3

type t = {
  generation : generation;
  lanes : int;  (** 1, 4, 8, or 16. *)
  max_payload : int;  (** TLP maximum payload size in bytes. *)
  header_bytes : int;  (** TLP header + framing per packet. *)
}

val v1_x16 : t
(** The paper's bus: PCIe v1 device in an x16 slot (§IV-A). *)

val v2_x16 : t

val v3_x16 : t

val gt_per_s : generation -> float
(** Per-lane signalling rate in gigatransfers per second. *)

val encoding_efficiency : generation -> float
(** 8b/10b for Gen1/2 (0.8), 128b/130b for Gen3. *)

val raw_bandwidth : t -> float
(** Bytes per second after line encoding, before packet overhead. *)

val packet_efficiency : t -> float
(** [max_payload / (max_payload + header_bytes)]. *)

val effective_bandwidth : t -> float
(** {!raw_bandwidth} x {!packet_efficiency}: the ceiling a perfect DMA
    engine could sustain. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
