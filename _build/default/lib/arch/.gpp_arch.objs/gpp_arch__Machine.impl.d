lib/arch/machine.ml: Cpu Format Gpu Pcie_spec Result
