lib/arch/pcie_spec.ml: Format Gpp_util List Result
