lib/arch/cpu.ml: Format Gpp_util Result
