lib/arch/cpu.mli: Format
