lib/arch/machine.mli: Cpu Format Gpu Pcie_spec
