lib/arch/pcie_spec.mli: Format
