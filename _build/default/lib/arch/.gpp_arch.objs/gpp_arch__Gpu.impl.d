lib/arch/gpu.ml: Format Gpp_util Result
