lib/arch/gpu.mli: Format
