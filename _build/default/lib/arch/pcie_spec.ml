type generation = Gen1 | Gen2 | Gen3

type t = { generation : generation; lanes : int; max_payload : int; header_bytes : int }

let v1_x16 = { generation = Gen1; lanes = 16; max_payload = 128; header_bytes = 20 }

let v2_x16 = { generation = Gen2; lanes = 16; max_payload = 256; header_bytes = 20 }

let v3_x16 = { generation = Gen3; lanes = 16; max_payload = 256; header_bytes = 22 }

let gt_per_s = function Gen1 -> 2.5 | Gen2 -> 5.0 | Gen3 -> 8.0

let encoding_efficiency = function Gen1 | Gen2 -> 0.8 | Gen3 -> 128.0 /. 130.0

let raw_bandwidth t =
  (* GT/s x lanes = raw gigabits/s on the wire; encoding turns line bits
     into data bits; /8 turns bits into bytes. *)
  gt_per_s t.generation *. 1e9 *. float_of_int t.lanes *. encoding_efficiency t.generation /. 8.0

let packet_efficiency t = float_of_int t.max_payload /. float_of_int (t.max_payload + t.header_bytes)

let effective_bandwidth t = raw_bandwidth t *. packet_efficiency t

let validate t =
  let check cond msg = if cond then Ok () else Error ("pcie: " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (List.mem t.lanes [ 1; 2; 4; 8; 16 ]) "invalid lane count" in
  let* () = check (t.max_payload > 0) "max_payload must be positive" in
  check (t.header_bytes > 0) "header_bytes must be positive"

let generation_name = function Gen1 -> "1" | Gen2 -> "2" | Gen3 -> "3"

let pp ppf t =
  Format.fprintf ppf "PCIe v%s x%d (%a effective)" (generation_name t.generation) t.lanes
    Gpp_util.Units.pp_bandwidth (effective_bandwidth t)
