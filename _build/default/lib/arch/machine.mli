(** A complete host + accelerator system.

    Bundles the CPU, GPU, and PCIe descriptions that every projection
    and simulation needs, with a preset for the paper's testbed. *)

type t = { name : string; cpu : Cpu.t; gpu : Gpu.t; pcie : Pcie_spec.t }

val argonne_node : t
(** One node of the Argonne data analysis and visualization cluster used
    in the paper (§IV-A): Xeon E5405 + Quadro FX 5600 on PCIe v1 x16. *)

val section2b_node : t
(** The machine of the paper's §II-B vector-addition example: a Xeon
    E5645 (32 GB/s memory system) paired with the Quadro FX 5600 on a
    PCIe v1 bus — the combination behind the "2.4x faster kernel, ~10x
    slower end to end" argument. *)

val gt200_node : t
(** A GT200-era step-up (Tesla C1060 on PCIe v2), between the testbed
    and the Fermi node. *)

val modern_node : t
(** A Fermi-era comparison system (Tesla C2050 on PCIe v2), used by the
    extension experiments. *)

val presets : t list
(** All bundled machines, oldest first. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
