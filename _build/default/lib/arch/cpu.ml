type t = {
  name : string;
  cores : int;
  threads : int;
  clock_ghz : float;
  flops_per_core_cycle : float;
  mem_bandwidth : float;
  achieved_bw_fraction : float;
  llc_bytes : int;
  cache_bandwidth : float;
  parallel_efficiency : float;
  parallel_overhead : float;
}

let xeon_e5405 =
  {
    name = "Intel Xeon E5405";
    cores = 4;
    threads = 8;
    clock_ghz = 2.0;
    flops_per_core_cycle = 4.0 (* SSE: 2-wide double FMA-less mul+add *);
    mem_bandwidth = Gpp_util.Units.gb_per_s 10.6 (* FSB 1333 MT/s x 8 B *);
    achieved_bw_fraction = 0.55;
    llc_bytes = 12 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 48.0;
    parallel_efficiency = 0.82;
    parallel_overhead = Gpp_util.Units.us 6.0;
  }

let xeon_e5645 =
  {
    name = "Intel Xeon E5645";
    cores = 6;
    threads = 12;
    clock_ghz = 2.4;
    flops_per_core_cycle = 4.0;
    mem_bandwidth = Gpp_util.Units.gb_per_s 32.0;
    achieved_bw_fraction = 0.6;
    llc_bytes = 12 * 1024 * 1024;
    cache_bandwidth = Gpp_util.Units.gb_per_s 120.0;
    parallel_efficiency = 0.85;
    parallel_overhead = Gpp_util.Units.us 5.0;
  }

let peak_gflops t = float_of_int t.cores *. t.clock_ghz *. t.flops_per_core_cycle

let validate t =
  let check cond msg = if cond then Ok () else Error (t.name ^ ": " ^ msg) in
  let ( let* ) = Result.bind in
  let* () = check (t.cores > 0) "cores must be positive" in
  let* () = check (t.threads >= t.cores) "threads must be >= cores" in
  let* () = check (t.clock_ghz > 0.0) "clock must be positive" in
  let* () = check (t.mem_bandwidth > 0.0) "mem_bandwidth must be positive" in
  let* () =
    check
      (t.achieved_bw_fraction > 0.0 && t.achieved_bw_fraction <= 1.0)
      "achieved_bw_fraction outside (0, 1]"
  in
  let* () = check (t.llc_bytes > 0) "llc_bytes must be positive" in
  let* () = check (t.cache_bandwidth >= t.mem_bandwidth) "cache slower than memory" in
  let* () =
    check
      (t.parallel_efficiency > 0.0 && t.parallel_efficiency <= 1.0)
      "parallel_efficiency outside (0, 1]"
  in
  check (t.parallel_overhead >= 0.0) "parallel_overhead must be non-negative"

let pp ppf t =
  Format.fprintf ppf "%s: %d cores (%d threads) @ %.2f GHz, %.0f GFLOP/s, %a memory" t.name
    t.cores t.threads t.clock_ghz (peak_gflops t) Gpp_util.Units.pp_bandwidth t.mem_bandwidth
