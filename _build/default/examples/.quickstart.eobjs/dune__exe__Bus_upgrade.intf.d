examples/bus_upgrade.mli:
