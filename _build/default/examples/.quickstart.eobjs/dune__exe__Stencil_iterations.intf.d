examples/stencil_iterations.mli:
