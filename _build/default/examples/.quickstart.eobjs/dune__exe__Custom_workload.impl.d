examples/custom_workload.ml: Format Gpp_arch Gpp_core Gpp_dataflow Gpp_model Gpp_skeleton Gpp_transform List Printf
