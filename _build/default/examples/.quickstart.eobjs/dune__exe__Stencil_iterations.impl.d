examples/stencil_iterations.ml: Array Float Format Gpp_arch Gpp_core Gpp_util Gpp_workloads List
