examples/sparse_offload.mli:
