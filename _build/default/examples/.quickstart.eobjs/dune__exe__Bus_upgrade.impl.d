examples/bus_upgrade.ml: Format Gpp_arch Gpp_core Gpp_pcie Gpp_util Gpp_workloads List
