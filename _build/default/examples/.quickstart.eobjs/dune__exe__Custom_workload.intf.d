examples/custom_workload.mli:
