examples/sparse_offload.ml: Array Format Gpp_arch Gpp_core Gpp_dataflow Gpp_workloads
