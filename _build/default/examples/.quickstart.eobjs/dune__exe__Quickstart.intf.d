examples/quickstart.mli:
