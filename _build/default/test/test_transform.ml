(* Tests for Gpp_transform: thread mapping, coalescing, tiling detection,
   characteristics synthesis, and the transformation search. *)

module Mapping = Gpp_transform.Mapping
module Tiling = Gpp_transform.Tiling
module Synthesize = Gpp_transform.Synthesize
module Explore = Gpp_transform.Explore
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module C = Gpp_model.Characteristics

let gpu = Gpp_arch.Gpu.quadro_fx_5600

(* Mapping *)

let test_innermost_parallel_var () =
  let k =
    Ir.kernel "k"
      ~loops:[ Ir.loop "y" ~extent:8; Ir.loop "x" ~extent:8; Ir.loop ~parallel:false "r" ~extent:3 ]
      ~body:[ Ir.compute 1.0 ]
  in
  Alcotest.(check (option string)) "innermost parallel" (Some "x")
    (Mapping.innermost_parallel_var k);
  Alcotest.(check int) "serial multiplier" 3 (Mapping.serial_multiplier k);
  let serial_only =
    Ir.kernel "s" ~loops:[ Ir.loop ~parallel:false "r" ~extent:3 ] ~body:[ Ir.compute 1.0 ]
  in
  Alcotest.(check (option string)) "no parallel loop" None
    (Mapping.innermost_parallel_var serial_only)

let row_major_kernel =
  Ir.kernel "rm"
    ~loops:[ Ir.loop "y" ~extent:64; Ir.loop "x" ~extent:64 ]
    ~body:[ Ir.compute 1.0 ]

let grid_decl = Decl.dense "g" ~dims:[ 64; 64 ]

let test_ref_strides () =
  let decls = [ grid_decl; Decl.dense "v" ~dims:[ 5; 64 ]; Decl.sparse "s" ~dims:[ 100 ] ] in
  let stride pattern = Mapping.ref_stride ~decls ~kernel:row_major_kernel
      { Ir.array = "g"; access = Ir.Load; pattern }
  in
  (* g[y][x]: unit stride along x. *)
  Alcotest.(check bool) "contiguous" true
    (stride (Ir.Affine [ Ix.var "y"; Ix.var "x" ]) = Mapping.Bytes 4);
  (* g[x][y]: row-size stride (transposed access). *)
  Alcotest.(check bool) "transposed" true
    (stride (Ir.Affine [ Ix.var "x"; Ix.var "y" ]) = Mapping.Bytes (64 * 4));
  (* g[y][0]: broadcast along x. *)
  Alcotest.(check bool) "broadcast" true
    (stride (Ir.Affine [ Ix.var "y"; Ix.const 0 ]) = Mapping.Bytes 0);
  (* SoA v[f][x] with f constant: unit stride. *)
  let soa =
    Mapping.ref_stride ~decls ~kernel:row_major_kernel
      { Ir.array = "v"; access = Ir.Load; pattern = Ir.Affine [ Ix.const 2; Ix.var "x" ] }
  in
  Alcotest.(check bool) "SoA coalesced" true (soa = Mapping.Bytes 4);
  (* Sparse arrays scatter. *)
  let sp =
    Mapping.ref_stride ~decls ~kernel:row_major_kernel
      { Ir.array = "s"; access = Ir.Load; pattern = Ir.Affine [ Ix.var "x" ] }
  in
  Alcotest.(check bool) "sparse scatters" true (sp = Mapping.Scattered)

let test_indirect_strides () =
  let decls = [ Decl.dense "m" ~dims:[ 100; 64 ]; Decl.dense "idx" ~dims:[ 64 ] ] in
  (* Pure gather: scattered. *)
  let gather =
    Mapping.ref_stride ~decls ~kernel:row_major_kernel
      { Ir.array = "m"; access = Ir.Load; pattern = Ir.Indirect { index_array = "idx"; offset = [] } }
  in
  Alcotest.(check bool) "pure gather scatters" true (gather = Mapping.Scattered);
  (* Indexed row with coalesced offset along x. *)
  let row =
    Mapping.ref_stride ~decls ~kernel:row_major_kernel
      {
        Ir.array = "m";
        access = Ir.Load;
        pattern = Ir.Indirect { index_array = "idx"; offset = [ Ix.var "x" ] };
      }
  in
  Alcotest.(check bool) "indexed row coalesces" true (row = Mapping.Bytes 4);
  (* Offset independent of the thread variable: still scattered. *)
  let bad =
    Mapping.ref_stride ~decls ~kernel:row_major_kernel
      {
        Ir.array = "m";
        access = Ir.Load;
        pattern = Ir.Indirect { index_array = "idx"; offset = [ Ix.var "y" ] };
      }
  in
  Alcotest.(check bool) "offset without thread var scatters" true (bad = Mapping.Scattered)

let test_transactions_per_access () =
  let tx stride = Mapping.transactions_per_access ~gpu ~elem_bytes:4 stride in
  (* 32 threads x 4 B = 128 B = 2 segments of 64 B. *)
  Helpers.close "unit stride" 2.0 (tx (Mapping.Bytes 4));
  Helpers.close "broadcast" 1.0 (tx (Mapping.Bytes 0));
  Helpers.close "scattered = warp size" 32.0 (tx Mapping.Scattered);
  (* Large strides cap at one transaction per lane. *)
  Helpers.close "huge stride" 32.0 (tx (Mapping.Bytes 256));
  (* 8 B stride: 32 lanes span 252 B -> 4 segments. *)
  Helpers.close "stride 8" 4.0 (tx (Mapping.Bytes 8))

let test_is_scattered () =
  Alcotest.(check bool) "scattered" true (Mapping.is_scattered ~gpu ~elem_bytes:4 Mapping.Scattered);
  Alcotest.(check bool) "unit stride not" false
    (Mapping.is_scattered ~gpu ~elem_bytes:4 (Mapping.Bytes 4));
  Alcotest.(check bool) "large stride is" true
    (Mapping.is_scattered ~gpu ~elem_bytes:4 (Mapping.Bytes 128))

(* Tiling *)

let test_tiling_detects_hotspot () =
  let program = Gpp_workloads.Hotspot.program ~n:128 () in
  let kernel = List.hd program.Gpp_skeleton.Program.kernels in
  let groups = Tiling.detect ~decls:program.Gpp_skeleton.Program.arrays kernel in
  match groups with
  | [ g ] ->
      Alcotest.(check string) "tiled array" "temp" g.Tiling.array;
      Alcotest.(check int) "nine taps" 9 g.Tiling.taps;
      Alcotest.(check int) "radius one" 1 g.Tiling.radius;
      Alcotest.(check int) "rank two" 2 g.Tiling.rank
  | groups -> Alcotest.failf "expected one group, got %d" (List.length groups)

let test_tiling_ignores_small_groups () =
  (* Two taps do not amortize a barrier: no group. *)
  let decls = [ Decl.dense "a" ~dims:[ 64 ]; Decl.dense "o" ~dims:[ 64 ] ] in
  let k =
    Ir.kernel "two_taps"
      ~loops:[ Ir.loop "i" ~extent:64 ]
      ~body:
        [
          Ir.load "a" [ Ix.var "i" ];
          Ir.load "a" [ Ix.offset (Ix.var "i") 1 ];
          Ir.compute 1.0;
          Ir.store "o" [ Ix.var "i" ];
        ]
  in
  Alcotest.(check int) "no group" 0 (List.length (Tiling.detect ~decls k))

let test_tiling_halo_factor () =
  let program = Gpp_workloads.Hotspot.program ~n:128 () in
  let kernel = List.hd program.Gpp_skeleton.Program.kernels in
  let g = List.hd (Tiling.detect ~decls:program.Gpp_skeleton.Program.arrays kernel) in
  let hf = Tiling.halo_factor g ~threads_per_block:256 ~unroll:1 in
  (* 2-D tile of 256 outputs: side 16, halo 1 -> 18^2/256 = 1.27. *)
  Helpers.close_rel ~tolerance:0.01 "halo factor" (18.0 *. 18.0 /. 256.0) hf;
  Alcotest.(check bool) "halo above one" true (hf > 1.0)

(* Synthesis *)

let hotspot_kernel_and_decls n =
  let program = Gpp_workloads.Hotspot.program ~n () in
  (List.hd program.Gpp_skeleton.Program.kernels, program.Gpp_skeleton.Program.arrays)

let test_synthesize_baseline () =
  let kernel, decls = hotspot_kernel_and_decls 128 in
  let cfg = Synthesize.scalar ~threads_per_block:256 in
  let c = Helpers.check_ok "synthesis" (Synthesize.characteristics ~gpu ~decls kernel cfg) in
  Alcotest.(check int) "grid covers iterations" ((128 * 128 + 255) / 256) c.C.grid_blocks;
  (* 9 temp taps + 1 power load. *)
  Helpers.close "loads" 10.0 c.C.load_insts_per_thread;
  Helpers.close "stores" 1.0 c.C.store_insts_per_thread;
  Helpers.close "no syncs untiled" 0.0 c.C.syncs_per_thread;
  Alcotest.(check int) "no shared mem untiled" 0 c.C.shared_mem_per_block

let test_synthesize_tiled_reduces_traffic () =
  let kernel, decls = hotspot_kernel_and_decls 128 in
  let base =
    Helpers.check_ok "base"
      (Synthesize.characteristics ~gpu ~decls kernel
         (Synthesize.scalar ~threads_per_block:256))
  in
  let tiled =
    Helpers.check_ok "tiled"
      (Synthesize.characteristics ~gpu ~decls kernel
         { (Synthesize.scalar ~threads_per_block:256) with Synthesize.shared_tiling = true })
  in
  Alcotest.(check bool) "fewer global loads" true
    (tiled.C.load_insts_per_thread < base.C.load_insts_per_thread);
  Alcotest.(check bool) "fewer load transactions" true
    (tiled.C.load_transactions_per_warp < base.C.load_transactions_per_warp);
  Alcotest.(check bool) "uses shared memory" true (tiled.C.shared_mem_per_block > 0);
  Alcotest.(check bool) "adds barriers" true (tiled.C.syncs_per_thread > 0.0);
  (* Stores are untouched by input tiling. *)
  Helpers.close "stores unchanged" base.C.store_insts_per_thread tiled.C.store_insts_per_thread

let test_synthesize_unroll_coarsens () =
  let kernel, decls = hotspot_kernel_and_decls 128 in
  let at unroll =
    Helpers.check_ok "synthesis"
      (Synthesize.characteristics ~gpu ~decls kernel
         { (Synthesize.scalar ~threads_per_block:256) with Synthesize.unroll })
  in
  let u1 = at 1 and u4 = at 4 in
  Alcotest.(check int) "4x fewer blocks" (u1.C.grid_blocks / 4) u4.C.grid_blocks;
  Helpers.close "4x flops per thread" (4.0 *. u1.C.flops_per_thread) u4.C.flops_per_thread;
  Alcotest.(check bool) "more registers" true
    (u4.C.registers_per_thread > u1.C.registers_per_thread)

let test_synthesize_total_work_invariant () =
  (* Whatever the configuration, total executed flops must be the
     skeleton's total. *)
  let kernel, decls = hotspot_kernel_and_decls 64 in
  let summary = Gpp_skeleton.Summary.of_kernel ~decls kernel in
  let heavy_weighted =
    (summary.Gpp_skeleton.Summary.flops_per_iter
    +. (4.0 *. summary.Gpp_skeleton.Summary.heavy_ops_per_iter))
    *. float_of_int summary.Gpp_skeleton.Summary.trip_count
  in
  List.iter
    (fun (tpb, unroll) ->
      let c =
        Helpers.check_ok "synthesis"
          (Synthesize.characteristics ~gpu ~decls kernel
             { (Synthesize.scalar ~threads_per_block:tpb) with Synthesize.unroll })
      in
      (* grid may round up: at least the skeleton total, at most one
         extra block's worth. *)
      let total = c.C.flops_per_thread *. float_of_int (C.total_threads c) in
      Helpers.check_in_range "total flops preserved" ~lo:heavy_weighted
        ~hi:(heavy_weighted *. 1.2) total)
    [ (64, 1); (256, 2); (512, 4) ]

let test_synthesize_vectorization () =
  (* A purely contiguous kernel vectorizes: fewer memory instructions,
     unchanged transactions and total work. *)
  let decls = [ Decl.dense "a" ~dims:[ 4096 ]; Decl.dense "b" ~dims:[ 4096 ] ] in
  let kernel =
    Ir.kernel "stream"
      ~loops:[ Ir.loop "i" ~extent:4096 ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 2.0; Ir.store "b" [ Ix.var "i" ] ]
  in
  let at w =
    Helpers.check_ok "synthesis"
      (Synthesize.characteristics ~gpu ~decls kernel
         { (Synthesize.scalar ~threads_per_block:256) with Synthesize.vector_width = w })
  in
  let v1 = at 1 and v4 = at 4 in
  Alcotest.(check int) "4x fewer threads" (v1.C.grid_blocks / 4) v4.C.grid_blocks;
  (* Per thread: 4 elements via 1 instruction each way. *)
  Helpers.close "vector loads" 1.0 v4.C.load_insts_per_thread;
  Helpers.close "vector stores" 1.0 v4.C.store_insts_per_thread;
  Helpers.close "4x flops" (4.0 *. v1.C.flops_per_thread) v4.C.flops_per_thread;
  (* Total traffic (transactions x grid) is preserved. *)
  Helpers.close_rel ~tolerance:0.01 "total transactions preserved"
    (C.total_transactions ~gpu v1)
    (C.total_transactions ~gpu v4);
  Alcotest.(check bool) "more registers" true
    (v4.C.registers_per_thread > v1.C.registers_per_thread)

let test_vectorization_requires_contiguity () =
  (* Strided accesses cannot vectorize. *)
  let decls = [ Decl.dense "a" ~dims:[ 4096 ]; Decl.dense "b" ~dims:[ 2048 ] ] in
  let strided =
    Ir.kernel "strided"
      ~loops:[ Ir.loop "i" ~extent:2048 ]
      ~body:[ Ir.load "a" [ Ix.var ~coeff:2 "i" ]; Ir.compute 1.0; Ir.store "b" [ Ix.var "i" ] ]
  in
  ignore
    (Helpers.check_error "strided cannot vectorize"
       (Synthesize.characteristics ~gpu ~decls strided
          { (Synthesize.scalar ~threads_per_block:256) with Synthesize.vector_width = 4 }));
  (* The search simply skips the infeasible vector points. *)
  let candidates = Explore.search ~gpu ~decls strided in
  Alcotest.(check bool) "search still finds configs" true (candidates <> []);
  List.iter
    (fun c ->
      Alcotest.(check int) "no vector configs" 1 c.Explore.config.Synthesize.vector_width)
    candidates

let test_vectorization_helps_inst_bound_kernels () =
  (* For an instruction-rate-limited streaming kernel, the projected
     time with float4 accesses should not be worse. *)
  let decls = [ Decl.dense "a" ~dims:[ 1 lsl 20 ]; Decl.dense "b" ~dims:[ 1 lsl 20 ] ] in
  let kernel =
    Ir.kernel "axpy"
      ~loops:[ Ir.loop "i" ~extent:(1 lsl 20) ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 2.0; Ir.store "b" [ Ix.var "i" ] ]
  in
  let time w =
    let c =
      Helpers.check_ok "synthesis"
        (Synthesize.characteristics ~gpu ~decls kernel
           { (Synthesize.scalar ~threads_per_block:256) with Synthesize.vector_width = w })
    in
    (Helpers.check_ok "project" (Gpp_model.Analytic.project ~gpu c))
      .Gpp_model.Analytic.kernel_time
  in
  Alcotest.(check bool) "vec4 not slower" true (time 4 <= time 1 *. 1.05)

let test_synthesize_errors () =
  let decls = [ Decl.dense "a" ~dims:[ 64 ] ] in
  let serial =
    Ir.kernel "serial" ~loops:[ Ir.loop ~parallel:false "i" ~extent:64 ] ~body:[ Ir.compute 1.0 ]
  in
  ignore
    (Helpers.check_error "no parallelism"
       (Synthesize.characteristics ~gpu ~decls serial
          (Synthesize.scalar ~threads_per_block:64)));
  let kernel, decls = hotspot_kernel_and_decls 64 in
  ignore
    (Helpers.check_error "bad unroll"
       (Synthesize.characteristics ~gpu ~decls kernel
          { (Synthesize.scalar ~threads_per_block:64) with Synthesize.unroll = 0 }));
  let no_stencil =
    Ir.kernel "flat" ~loops:[ Ir.loop "i" ~extent:64 ]
      ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 1.0 ]
  in
  ignore
    (Helpers.check_error "no tiling opportunity"
       (Synthesize.characteristics ~gpu ~decls:[ Decl.dense "a" ~dims:[ 64 ] ] no_stencil
          { (Synthesize.scalar ~threads_per_block:64) with Synthesize.shared_tiling = true }))

(* Exploration *)

let test_search_sorted_and_feasible () =
  let kernel, decls = hotspot_kernel_and_decls 256 in
  let candidates = Explore.search ~gpu ~decls kernel in
  Alcotest.(check bool) "non-empty" true (candidates <> []);
  let times =
    List.map (fun c -> c.Explore.projection.Gpp_model.Analytic.kernel_time) candidates
  in
  Alcotest.(check bool) "sorted ascending" true (List.sort Float.compare times = times);
  (* Every candidate's block size respects the device limit. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "feasible block" true
        (c.Explore.characteristics.C.threads_per_block <= gpu.Gpp_arch.Gpu.max_threads_per_block))
    candidates

let test_best_picks_head () =
  let kernel, decls = hotspot_kernel_and_decls 256 in
  let best = Helpers.check_ok "best" (Explore.best ~gpu ~decls kernel) in
  let all = Explore.search ~gpu ~decls kernel in
  Helpers.close "best = head of sorted search"
    (List.hd all).Explore.projection.Gpp_model.Analytic.kernel_time
    best.Explore.projection.Gpp_model.Analytic.kernel_time

let test_best_error_on_serial_kernel () =
  let serial =
    Ir.kernel "serial" ~loops:[ Ir.loop ~parallel:false "i" ~extent:64 ] ~body:[ Ir.compute 1.0 ]
  in
  ignore (Helpers.check_error "serial kernel" (Explore.best ~gpu ~decls:[] serial))

let test_search_space_restriction () =
  let kernel, decls = hotspot_kernel_and_decls 128 in
  let space =
    {
      Explore.block_sizes = [ 128 ];
      unroll_factors = [ 1 ];
      vector_widths = [ 1 ];
      allow_tiling = false;
    }
  in
  let candidates = Explore.search ~space ~gpu ~decls kernel in
  Alcotest.(check int) "single point" 1 (List.length candidates);
  let c = List.hd candidates in
  Alcotest.(check int) "tpb honored" 128 c.Explore.characteristics.C.threads_per_block

let () =
  Alcotest.run "gpp_transform"
    [
      ( "mapping",
        [
          Alcotest.test_case "innermost parallel var" `Quick test_innermost_parallel_var;
          Alcotest.test_case "affine strides" `Quick test_ref_strides;
          Alcotest.test_case "indirect strides" `Quick test_indirect_strides;
          Alcotest.test_case "transactions" `Quick test_transactions_per_access;
          Alcotest.test_case "scatter classification" `Quick test_is_scattered;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "detects hotspot stencil" `Quick test_tiling_detects_hotspot;
          Alcotest.test_case "ignores small groups" `Quick test_tiling_ignores_small_groups;
          Alcotest.test_case "halo factor" `Quick test_tiling_halo_factor;
        ] );
      ( "synthesize",
        [
          Alcotest.test_case "baseline" `Quick test_synthesize_baseline;
          Alcotest.test_case "tiling reduces traffic" `Quick test_synthesize_tiled_reduces_traffic;
          Alcotest.test_case "unroll coarsens" `Quick test_synthesize_unroll_coarsens;
          Alcotest.test_case "work invariant" `Quick test_synthesize_total_work_invariant;
          Alcotest.test_case "vectorization" `Quick test_synthesize_vectorization;
          Alcotest.test_case "vector contiguity" `Quick test_vectorization_requires_contiguity;
          Alcotest.test_case "vector benefit" `Quick test_vectorization_helps_inst_bound_kernels;
          Alcotest.test_case "error cases" `Quick test_synthesize_errors;
        ] );
      ( "explore",
        [
          Alcotest.test_case "sorted feasible" `Quick test_search_sorted_and_feasible;
          Alcotest.test_case "best is head" `Quick test_best_picks_head;
          Alcotest.test_case "serial kernel" `Quick test_best_error_on_serial_kernel;
          Alcotest.test_case "space restriction" `Quick test_search_space_restriction;
        ] );
    ]
