(* Tests for Gpp_brs: sections (arithmetic-progression algebra), regions,
   and BRS extraction from skeletons. *)

module Section = Gpp_brs.Section
module Region = Gpp_brs.Region
module Extract = Gpp_brs.Extract
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl

(* Brute-force element enumeration of one progression. *)
let elements_of (d : Section.dim) =
  let rec go acc x = if x > d.Section.hi then List.rev acc else go (x :: acc) (x + d.Section.stride) in
  go [] d.Section.lo

let dim_gen =
  QCheck2.Gen.(
    let* lo = int_range (-50) 50 in
    let* len = int_range 0 60 in
    let* stride = int_range 1 7 in
    return (Section.dim_exn ~lo ~hi:(lo + len) ~stride))

(* Section.dim normalization *)

let test_dim_normalization () =
  Alcotest.(check bool) "empty" true (Section.dim ~lo:5 ~hi:4 ~stride:1 = None);
  let d = Section.dim_exn ~lo:0 ~hi:10 ~stride:4 in
  Alcotest.(check int) "clamped hi" 8 d.Section.hi;
  let point = Section.dim_exn ~lo:3 ~hi:3 ~stride:9 in
  Alcotest.(check int) "point stride canonical" 1 point.Section.stride;
  Helpers.check_raises_invalid "stride 0" (fun () -> ignore (Section.dim ~lo:0 ~hi:1 ~stride:0));
  Helpers.check_raises_invalid "empty exn" (fun () ->
      ignore (Section.dim_exn ~lo:1 ~hi:0 ~stride:1))

let test_dim_size_and_mem () =
  let d = Section.dim_exn ~lo:2 ~hi:14 ~stride:3 in
  Alcotest.(check int) "size" 5 (Section.dim_size d);
  Alcotest.(check bool) "mem on" true (Section.dim_mem d 8);
  Alcotest.(check bool) "mem off-grid" false (Section.dim_mem d 9);
  Alcotest.(check bool) "mem outside" false (Section.dim_mem d 17)

let test_dim_size_matches_enum =
  Helpers.qtest "size = |elements|" dim_gen (fun d ->
      Section.dim_size d = List.length (elements_of d))

(* Intersection: exact per the CRT, validated against brute force. *)

let test_dim_intersect_brute_force =
  Helpers.qtest ~count:500 "intersection = set intersection"
    QCheck2.Gen.(pair dim_gen dim_gen)
    (fun (d1, d2) ->
      let expected = List.filter (fun x -> Section.dim_mem d2 x) (elements_of d1) in
      match Section.dim_intersect d1 d2 with
      | None -> expected = []
      | Some d -> elements_of d = expected)

let test_dim_intersect_known () =
  (* {0,3,6,...} n {0,5,10,...} = {0,15,30,...} *)
  let d1 = Section.dim_exn ~lo:0 ~hi:30 ~stride:3 in
  let d2 = Section.dim_exn ~lo:0 ~hi:30 ~stride:5 in
  match Section.dim_intersect d1 d2 with
  | Some d ->
      Alcotest.(check int) "lo" 0 d.Section.lo;
      Alcotest.(check int) "stride" 15 d.Section.stride;
      Alcotest.(check int) "hi" 30 d.Section.hi
  | None -> Alcotest.fail "expected non-empty intersection"

let test_dim_intersect_incompatible_residues () =
  (* {0,2,4,...} n {1,3,5,...} = empty *)
  let evens = Section.dim_exn ~lo:0 ~hi:20 ~stride:2 in
  let odds = Section.dim_exn ~lo:1 ~hi:21 ~stride:2 in
  Alcotest.(check bool) "disjoint residues" true (Section.dim_intersect evens odds = None)

(* Union hull *)

let test_dim_union_superset =
  Helpers.qtest ~count:500 "union contains both operands"
    QCheck2.Gen.(pair dim_gen dim_gen)
    (fun (d1, d2) ->
      let hull = Section.dim_union d1 d2 in
      List.for_all (Section.dim_mem hull) (elements_of d1)
      && List.for_all (Section.dim_mem hull) (elements_of d2))

let test_dim_union_exact_matches_brute_force =
  Helpers.qtest ~count:500 "union_exact <=> hull adds no elements"
    QCheck2.Gen.(pair dim_gen dim_gen)
    (fun (d1, d2) ->
      let hull = Section.dim_union d1 d2 in
      let union_set = List.sort_uniq compare (elements_of d1 @ elements_of d2) in
      Section.dim_union_exact d1 d2 = (Section.dim_size hull = List.length union_set))

let test_dim_union_adjacent_rows () =
  (* 0:9 u 10:19 = 0:19, exactly. *)
  let a = Section.dim_exn ~lo:0 ~hi:9 ~stride:1 in
  let b = Section.dim_exn ~lo:10 ~hi:19 ~stride:1 in
  Alcotest.(check bool) "exact" true (Section.dim_union_exact a b);
  Alcotest.(check int) "merged size" 20 (Section.dim_size (Section.dim_union a b))

let test_dim_contains () =
  let outer = Section.dim_exn ~lo:0 ~hi:20 ~stride:2 in
  let inner = Section.dim_exn ~lo:4 ~hi:12 ~stride:4 in
  Alcotest.(check bool) "contains" true (Section.dim_contains ~outer ~inner);
  let off = Section.dim_exn ~lo:1 ~hi:5 ~stride:2 in
  Alcotest.(check bool) "wrong residue" false (Section.dim_contains ~outer ~inner:off)

(* Multidimensional sections *)

let sec array dims = Section.make array dims

let test_section_basics () =
  let s =
    sec "a" [ Section.dim_exn ~lo:0 ~hi:3 ~stride:1; Section.dim_exn ~lo:0 ~hi:9 ~stride:1 ]
  in
  Alcotest.(check int) "size" 40 (Section.size s);
  Alcotest.(check int) "bytes" 160 (Section.bytes ~elem_bytes:4 s);
  Alcotest.(check bool) "mem" true (Section.mem s [ 2; 5 ]);
  Alcotest.(check bool) "not mem" false (Section.mem s [ 4; 5 ]);
  Helpers.check_raises_invalid "rank mismatch" (fun () -> ignore (Section.mem s [ 1 ]));
  Helpers.check_raises_invalid "empty dims" (fun () -> ignore (Section.make "a" []))

let test_section_intersect_union () =
  let row r = sec "m" [ Section.point r; Section.dim_exn ~lo:0 ~hi:9 ~stride:1 ] in
  Alcotest.(check bool) "different rows disjoint" true (Section.intersect (row 0) (row 1) = None);
  Alcotest.(check bool) "same row overlaps" true (Section.overlap (row 2) (row 2));
  let hull = Section.union (row 0) (row 1) in
  Alcotest.(check int) "two-row hull" 20 (Section.size hull);
  Alcotest.(check bool) "adjacent rows exact" true (Section.union_exact (row 0) (row 1));
  Alcotest.(check bool) "gap rows inexact" false (Section.union_exact (row 0) (row 2));
  Alcotest.(check bool) "different arrays" true
    (Section.intersect (row 0) (sec "other" [ Section.point 0; Section.point 0 ]) = None)

let test_section_union_diagonal_inexact () =
  (* Differing in two dimensions: the hull covers a rectangle, strictly
     larger than the two points. *)
  let a = sec "m" [ Section.point 0; Section.point 0 ] in
  let b = sec "m" [ Section.point 1; Section.point 1 ] in
  Alcotest.(check bool) "diagonal union inexact" false (Section.union_exact a b);
  Alcotest.(check int) "hull is the bounding box" 4 (Section.size (Section.union a b))

let test_whole_array () =
  let d = Decl.dense "a" ~dims:[ 6; 7 ] in
  let s = Section.whole_array d in
  Alcotest.(check int) "whole size" 42 (Section.size s);
  Alcotest.(check bool) "contains corner" true (Section.mem s [ 5; 6 ])

(* Regions *)

let test_region_merge_exact () =
  let row r = sec "m" [ Section.point r; Section.dim_exn ~lo:0 ~hi:9 ~stride:1 ] in
  let region = Region.empty ~array:"m" in
  let region = Region.add region (row 0) in
  let region = Region.add region (row 1) in
  let region = Region.add region (row 2) in
  Alcotest.(check int) "three adjacent rows fuse" 1 (List.length (Region.sections region));
  Alcotest.(check int) "covered" 30 (Region.covered_elements region);
  let again = Region.add region (row 1) in
  Alcotest.(check int) "idempotent re-add" 30 (Region.covered_elements again)

let test_region_keeps_disjoint () =
  let row r = sec "m" [ Section.point r; Section.dim_exn ~lo:0 ~hi:9 ~stride:1 ] in
  let region = Region.add (Region.add (Region.empty ~array:"m") (row 0)) (row 5) in
  Alcotest.(check int) "two pieces" 2 (List.length (Region.sections region));
  Alcotest.(check int) "covered" 20 (Region.covered_elements region);
  Alcotest.(check bool) "covers row0" true (Region.covers region (row 0));
  Alcotest.(check bool) "does not cover row3" false (Region.covers region (row 3));
  Alcotest.(check bool) "mem" true (Region.mem region [ 5; 9 ]);
  Alcotest.(check bool) "not mem" false (Region.mem region [ 3; 0 ])

let test_region_merge_regions () =
  let row r = sec "m" [ Section.point r; Section.dim_exn ~lo:0 ~hi:9 ~stride:1 ] in
  let a = Region.of_section (row 0) and b = Region.of_section (row 1) in
  let merged = Region.merge a b in
  Alcotest.(check int) "merged covered" 20 (Region.covered_elements merged);
  Helpers.check_raises_invalid "array mismatch" (fun () ->
      ignore (Region.merge a (Region.empty ~array:"other")))

let test_region_bulk_property =
  Helpers.qtest ~count:200 "region covers every added 1-D interval"
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_range 0 40) (int_range 0 10)))
    (fun intervals ->
      let region =
        List.fold_left
          (fun region (lo, len) ->
            Region.add region (sec "a" [ Section.dim_exn ~lo ~hi:(lo + len) ~stride:1 ]))
          (Region.empty ~array:"a") intervals
      in
      List.for_all
        (fun (lo, len) ->
          List.for_all (fun x -> Region.mem region [ x ]) (List.init (len + 1) (fun i -> lo + i)))
        intervals
      &&
      let true_union =
        List.sort_uniq compare
          (List.concat_map (fun (lo, len) -> List.init (len + 1) (fun i -> lo + i)) intervals)
      in
      Region.covered_elements region >= List.length true_union)

(* Extraction *)

let stencil_kernel n =
  Ir.kernel "stencil"
    ~loops:[ Ir.loop "y" ~extent:n; Ir.loop "x" ~extent:n ]
    ~body:
      [
        Ir.load "g" [ Ix.offset (Ix.var "y") (-1); Ix.var "x" ];
        Ir.load "g" [ Ix.var "y"; Ix.var "x" ];
        Ir.load "g" [ Ix.offset (Ix.var "y") 1; Ix.var "x" ];
        Ir.compute 1.0;
        Ir.store "o" [ Ix.var "y"; Ix.var "x" ];
      ]

let stencil_decls n = [ Decl.dense "g" ~dims:[ n; n ]; Decl.dense "o" ~dims:[ n; n ] ]

let test_extract_affine_clipped () =
  let n = 16 in
  let access = Extract.of_kernel ~decls:(stencil_decls n) (stencil_kernel n) in
  (match Extract.reads_of access "g" with
  | Some region ->
      (* Halo reads step outside the grid but are clipped to it, so the
         read region is exactly the whole array. *)
      Alcotest.(check int) "reads whole grid" (n * n) (Region.covered_elements region)
  | None -> Alcotest.fail "expected g to be read");
  (match Extract.writes_of access "o" with
  | Some region ->
      Alcotest.(check int) "writes whole grid" (n * n) (Region.covered_elements region)
  | None -> Alcotest.fail "expected o to be written");
  Alcotest.(check (list string)) "all exact" [] access.Extract.inexact_arrays

let test_extract_strided () =
  let k =
    Ir.kernel "strided"
      ~loops:[ Ir.loop "i" ~extent:10 ]
      ~body:[ Ir.load "a" [ Ix.var ~coeff:3 "i" ]; Ir.compute 1.0 ]
  in
  let decls = [ Decl.dense "a" ~dims:[ 100 ] ] in
  let info =
    Extract.section_of_ref ~decls ~kernel:k
      { Ir.array = "a"; access = Ir.Load; pattern = Ir.Affine [ Ix.var ~coeff:3 "i" ] }
  in
  Alcotest.(check bool) "exact" true info.Extract.exact;
  Alcotest.(check int) "strided size" 10 (Section.size info.Extract.section);
  Alcotest.(check bool) "on stride" true (Section.mem info.Extract.section [ 27 ]);
  Alcotest.(check bool) "off stride" false (Section.mem info.Extract.section [ 28 ])

let test_extract_multivar_no_gaps () =
  (* a[i*8 + j] with j in 0..7 covers a contiguous range: recognized as
     exact with stride 1. *)
  let expr = Ix.add (Ix.var ~coeff:8 "i") (Ix.var "j") in
  let k =
    Ir.kernel "flat"
      ~loops:[ Ir.loop "i" ~extent:4; Ir.loop "j" ~extent:8 ]
      ~body:[ Ir.load "a" [ expr ]; Ir.compute 1.0 ]
  in
  let decls = [ Decl.dense "a" ~dims:[ 32 ] ] in
  let info =
    Extract.section_of_ref ~decls ~kernel:k
      { Ir.array = "a"; access = Ir.Load; pattern = Ir.Affine [ expr ] }
  in
  Alcotest.(check bool) "no gaps -> exact" true info.Extract.exact;
  Alcotest.(check int) "full coverage" 32 (Section.size info.Extract.section)

let test_extract_multivar_with_gaps () =
  (* a[i*10 + j] with j in 0..7 leaves gaps: hull is conservative. *)
  let expr = Ix.add (Ix.var ~coeff:10 "i") (Ix.var "j") in
  let k =
    Ir.kernel "gappy"
      ~loops:[ Ir.loop "i" ~extent:4; Ir.loop "j" ~extent:8 ]
      ~body:[ Ir.load "a" [ expr ]; Ir.compute 1.0 ]
  in
  let decls = [ Decl.dense "a" ~dims:[ 64 ] ] in
  let info =
    Extract.section_of_ref ~decls ~kernel:k
      { Ir.array = "a"; access = Ir.Load; pattern = Ir.Affine [ expr ] }
  in
  Alcotest.(check bool) "gaps -> inexact" false info.Extract.exact;
  (* The hull must still contain every truly accessed element. *)
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          Alcotest.(check bool) "hull superset" true
            (Section.mem info.Extract.section [ (10 * i) + j ]))
        [ 0; 7 ])
    [ 0; 3 ]

let test_extract_indirect_conservative () =
  let k =
    Ir.kernel "gather"
      ~loops:[ Ir.loop "i" ~extent:8 ]
      ~body:[ Ir.load "idx" [ Ix.var "i" ]; Ir.load_indirect "table" ~via:"idx"; Ir.compute 1.0 ]
  in
  let decls = [ Decl.dense "idx" ~dims:[ 8 ]; Decl.dense "table" ~dims:[ 1000 ] ] in
  let access = Extract.of_kernel ~decls k in
  Alcotest.(check (list string)) "table conservative" [ "table" ] access.Extract.inexact_arrays;
  match Extract.reads_of access "table" with
  | Some region -> Alcotest.(check int) "whole table" 1000 (Region.covered_elements region)
  | None -> Alcotest.fail "table should be read"

let test_extract_sparse_conservative () =
  let k =
    Ir.kernel "sparse_touch"
      ~loops:[ Ir.loop "i" ~extent:4 ]
      ~body:[ Ir.load "s" [ Ix.var "i" ]; Ir.compute 1.0 ]
  in
  let decls = [ Decl.sparse "s" ~nnz:16 ~dims:[ 256 ] ] in
  let access = Extract.of_kernel ~decls k in
  Alcotest.(check (list string)) "sparse conservative" [ "s" ] access.Extract.inexact_arrays;
  match Extract.reads_of access "s" with
  | Some region -> Alcotest.(check int) "whole capacity" 256 (Region.covered_elements region)
  | None -> Alcotest.fail "s should be read"

let () =
  Alcotest.run "gpp_brs"
    [
      ( "dim",
        [
          Alcotest.test_case "normalization" `Quick test_dim_normalization;
          Alcotest.test_case "size/mem" `Quick test_dim_size_and_mem;
          test_dim_size_matches_enum;
          test_dim_intersect_brute_force;
          Alcotest.test_case "intersect CRT" `Quick test_dim_intersect_known;
          Alcotest.test_case "disjoint residues" `Quick test_dim_intersect_incompatible_residues;
          test_dim_union_superset;
          test_dim_union_exact_matches_brute_force;
          Alcotest.test_case "adjacent intervals" `Quick test_dim_union_adjacent_rows;
          Alcotest.test_case "contains" `Quick test_dim_contains;
        ] );
      ( "section",
        [
          Alcotest.test_case "basics" `Quick test_section_basics;
          Alcotest.test_case "intersect/union" `Quick test_section_intersect_union;
          Alcotest.test_case "diagonal hull" `Quick test_section_union_diagonal_inexact;
          Alcotest.test_case "whole array" `Quick test_whole_array;
        ] );
      ( "region",
        [
          Alcotest.test_case "exact merges" `Quick test_region_merge_exact;
          Alcotest.test_case "disjoint pieces" `Quick test_region_keeps_disjoint;
          Alcotest.test_case "merge regions" `Quick test_region_merge_regions;
          test_region_bulk_property;
        ] );
      ( "extract",
        [
          Alcotest.test_case "stencil clipped" `Quick test_extract_affine_clipped;
          Alcotest.test_case "strided" `Quick test_extract_strided;
          Alcotest.test_case "multi-var no gaps" `Quick test_extract_multivar_no_gaps;
          Alcotest.test_case "multi-var with gaps" `Quick test_extract_multivar_with_gaps;
          Alcotest.test_case "indirect conservative" `Quick test_extract_indirect_conservative;
          Alcotest.test_case "sparse conservative" `Quick test_extract_sparse_conservative;
        ] );
    ]
