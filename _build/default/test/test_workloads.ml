(* Tests for Gpp_workloads: skeleton well-formedness and functional
   correctness of the runnable reference implementations. *)

module Program = Gpp_skeleton.Program
module Registry = Gpp_workloads.Registry

(* Skeletons *)

let test_all_skeletons_validate () =
  List.iter
    (fun (inst : Registry.instance) ->
      List.iter
        (fun iterations ->
          ignore
            (Helpers.check_ok
               (Printf.sprintf "%s @ %d iterations" (Registry.key inst) iterations)
               (Program.validate (inst.Registry.program iterations))))
        [ 1; 3 ])
    Registry.all

let test_registry_lookup () =
  Alcotest.(check bool) "find hit" true (Registry.find ~app:"cfd" ~size:"97K" <> None);
  Alcotest.(check bool) "find miss" true (Registry.find ~app:"cfd" ~size:"1K" = None);
  Alcotest.(check bool) "by key" true (Registry.find_by_key "srad/4096 x 4096" <> None);
  Alcotest.(check bool) "bad key" true (Registry.find_by_key "nonsense" = None);
  Alcotest.(check (list string)) "apps in paper order"
    [ "cfd"; "hotspot"; "srad"; "stassuij"; "vecadd" ]
    Registry.apps;
  Alcotest.(check int) "paper rows" 10 (List.length Registry.paper_instances);
  Alcotest.(check int) "cfd sizes" 3 (List.length (Registry.instances_of_app "cfd"))

let test_kernel_structure () =
  let cfd = Gpp_workloads.Cfd.program ~nelem:1000 () in
  Alcotest.(check int) "cfd has three kernels" 3 (List.length cfd.Program.kernels);
  Alcotest.(check (list string)) "cfd schedule"
    [ "compute_step_factor"; "compute_flux"; "time_step" ]
    (Program.flatten_schedule cfd);
  let srad = Gpp_workloads.Srad.program ~n:64 () in
  Alcotest.(check int) "srad has two kernels" 2 (List.length srad.Program.kernels);
  let hotspot = Gpp_workloads.Hotspot.program ~n:64 () in
  Alcotest.(check int) "hotspot has one kernel" 1 (List.length hotspot.Program.kernels)

let test_iterations_scale_schedule () =
  let p = Gpp_workloads.Cfd.program ~iterations:5 ~nelem:1000 () in
  Alcotest.(check int) "5 x 3 kernels" 15 (Program.invocation_count p)

(* VecAdd reference *)

let test_vecadd_reference () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 10.0; 20.0; 30.0 |] in
  Alcotest.(check (array (float 1e-12))) "sum" [| 11.0; 22.0; 33.0 |]
    (Gpp_workloads.Vecadd.Reference.run a b);
  Helpers.check_raises_invalid "length mismatch" (fun () ->
      ignore (Gpp_workloads.Vecadd.Reference.run a [| 1.0 |]))

(* HotSpot reference *)

module HR = Gpp_workloads.Hotspot.Reference

let test_hotspot_uniform_equilibrium () =
  (* A uniform ambient-temperature grid with no power stays put. *)
  let n = 16 in
  let temp = HR.grid_of ~n (fun ~row:_ ~col:_ -> 80.0) in
  let power = HR.grid_of ~n (fun ~row:_ ~col:_ -> 0.0) in
  let after = HR.simulate ~temp ~power ~iterations:20 in
  Helpers.close ~tolerance:1e-9 "uniform stays uniform" 0.0 (HR.max_abs_diff temp after)

let test_hotspot_diffusion () =
  let n = 32 in
  let temp =
    HR.grid_of ~n (fun ~row ~col -> if row = n / 2 && col = n / 2 then 300.0 else 80.0)
  in
  let power = HR.grid_of ~n (fun ~row:_ ~col:_ -> 0.0) in
  let after = HR.simulate ~temp ~power ~iterations:40 in
  let peak g = Array.fold_left Float.max neg_infinity g.HR.cells in
  Alcotest.(check bool) "peak decays" true (peak after < 300.0);
  (* Heat spreads to the neighbour of the hot cell. *)
  let center_neighbor g = g.HR.cells.((n / 2 * n) + (n / 2) + 1) in
  Alcotest.(check bool) "neighbour warms" true (center_neighbor after > 80.0)

let test_hotspot_power_heats () =
  let n = 16 in
  let temp = HR.grid_of ~n (fun ~row:_ ~col:_ -> 80.0) in
  let power = HR.grid_of ~n (fun ~row ~col -> if row = 3 && col = 3 then 50.0 else 0.0) in
  let after = HR.simulate ~temp ~power ~iterations:10 in
  Alcotest.(check bool) "powered cell heats up" true (after.HR.cells.((3 * n) + 3) > 80.0)

let test_hotspot_errors () =
  let a = HR.grid_of ~n:4 (fun ~row:_ ~col:_ -> 0.0) in
  let b = HR.grid_of ~n:8 (fun ~row:_ ~col:_ -> 0.0) in
  Helpers.check_raises_invalid "size mismatch" (fun () -> ignore (HR.step ~temp:a ~power:b));
  Helpers.check_raises_invalid "negative iterations" (fun () ->
      ignore (HR.simulate ~temp:a ~power:a ~iterations:(-1)))

(* SRAD reference *)

module SR = Gpp_workloads.Srad.Reference

let speckled_image n =
  let rng = Gpp_util.Rng.create 31L in
  SR.image_of ~n (fun ~row:_ ~col:_ -> 100.0 *. Gpp_util.Rng.lognormal_noise rng ~sigma:0.2)

let test_srad_reduces_speckle () =
  let img = speckled_image 48 in
  let _, var_before = SR.mean_variance img in
  let after = SR.simulate img ~iterations:12 in
  let _, var_after = SR.mean_variance after in
  Alcotest.(check bool) "variance shrinks" true (var_after < var_before *. 0.8)

let test_srad_preserves_mean () =
  let img = speckled_image 48 in
  let mean_before, _ = SR.mean_variance img in
  let after = SR.simulate img ~iterations:12 in
  let mean_after, _ = SR.mean_variance after in
  Helpers.close_rel ~tolerance:0.05 "mean roughly preserved" mean_before mean_after

let test_srad_constant_fixed_point () =
  let img = SR.image_of ~n:16 (fun ~row:_ ~col:_ -> 42.0) in
  let after = SR.iterate img in
  Array.iteri
    (fun i v -> Helpers.close ~tolerance:1e-9 (Printf.sprintf "pixel %d" i) 42.0 v)
    after.SR.pixels

(* CFD reference *)

module CR = Gpp_workloads.Cfd.Reference

let test_cfd_conservation () =
  let s = CR.uniform_with_pulse ~n:256 in
  let mass0 = CR.total_mass s and energy0 = CR.total_energy s in
  let s' = CR.simulate s ~iterations:50 in
  (* Finite-volume with periodic boundaries conserves mass and energy
     to rounding. *)
  Helpers.close_rel ~tolerance:1e-10 "mass conserved" mass0 (CR.total_mass s');
  Helpers.close_rel ~tolerance:1e-10 "energy conserved" energy0 (CR.total_energy s')

let test_cfd_pulse_spreads () =
  let s = CR.uniform_with_pulse ~n:256 in
  let s' = CR.simulate s ~iterations:100 in
  let peak a = Array.fold_left Float.max neg_infinity a in
  Alcotest.(check bool) "density peak decays" true (peak s'.CR.density < peak s.CR.density);
  (* Flow develops: momentum is no longer identically zero. *)
  let momentum_norm a = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 a in
  Alcotest.(check bool) "momentum develops" true (momentum_norm s'.CR.momentum > 1e-6)

let test_cfd_positivity () =
  let s = CR.simulate (CR.uniform_with_pulse ~n:128) ~iterations:200 in
  Array.iter (fun d -> Helpers.check_positive "density positive" d) s.CR.density;
  List.iter
    (fun i -> Helpers.check_positive "pressure positive" (CR.pressure s i))
    (List.init s.CR.n (fun i -> i))

let test_cfd_errors () =
  let s = CR.uniform_with_pulse ~n:16 in
  Helpers.check_raises_invalid "bad cfl" (fun () -> ignore (CR.step ~cfl:0.0 s));
  Helpers.check_raises_invalid "negative iterations" (fun () ->
      ignore (CR.simulate s ~iterations:(-2)))

(* Stassuij reference *)

module TR = Gpp_workloads.Stassuij.Reference

let test_stassuij_csr_well_formed () =
  let a = TR.random_csr ~rows:50 ~cols:40 ~density:0.15 () in
  Alcotest.(check int) "row_ptr length" 51 (Array.length a.TR.row_ptr);
  Alcotest.(check int) "first row starts at 0" 0 a.TR.row_ptr.(0);
  Alcotest.(check int) "last row ends at nnz" (Array.length a.TR.values) a.TR.row_ptr.(50);
  (* Row pointers are non-decreasing and column indices in range. *)
  for r = 0 to 49 do
    Alcotest.(check bool) "non-decreasing" true (a.TR.row_ptr.(r) <= a.TR.row_ptr.(r + 1))
  done;
  Array.iter (fun c -> Helpers.check_in_range "col in range" ~lo:0.0 ~hi:39.0 (float_of_int c)) a.TR.col_idx

let test_stassuij_multiply_matches_dense () =
  let a = TR.random_csr ~rows:30 ~cols:25 ~density:0.2 () in
  let x = TR.random_complex ~rows:25 ~cols:12 () in
  Helpers.close ~tolerance:1e-9 "csr = dense" 0.0 (TR.max_abs_diff (TR.multiply a x) (TR.dense_multiply a x))

let test_stassuij_accumulate () =
  let a = TR.random_csr ~rows:10 ~cols:10 ~density:0.3 () in
  let x = TR.random_complex ~rows:10 ~cols:6 () in
  let y = TR.random_complex ~seed:99L ~rows:10 ~cols:6 () in
  let acc = TR.multiply_accumulate a x ~into:y in
  let plain = TR.multiply a x in
  (* acc - y = plain, elementwise. *)
  let diff =
    {
      TR.m_rows = 10;
      m_cols = 6;
      re = Array.mapi (fun i v -> v -. y.TR.re.(i)) acc.TR.re;
      im = Array.mapi (fun i v -> v -. y.TR.im.(i)) acc.TR.im;
    }
  in
  Helpers.close ~tolerance:1e-9 "accumulate adds into" 0.0 (TR.max_abs_diff diff plain)

let test_stassuij_dimension_checks () =
  let a = TR.random_csr ~rows:10 ~cols:10 ~density:0.3 () in
  let x = TR.random_complex ~rows:5 ~cols:6 () in
  Helpers.check_raises_invalid "inner mismatch" (fun () -> ignore (TR.multiply a x));
  Helpers.check_raises_invalid "bad density" (fun () ->
      ignore (TR.random_csr ~rows:5 ~cols:5 ~density:0.0 ()))

let test_stassuij_shape_matches_paper () =
  let shape = Gpp_workloads.Stassuij.default_shape in
  Alcotest.(check int) "rows" 132 shape.Gpp_workloads.Stassuij.rows;
  Alcotest.(check int) "dense cols" 2048 shape.Gpp_workloads.Stassuij.dense_cols;
  (* ~10% density as in the GFMC correlation operators we synthesize. *)
  Helpers.check_in_range "density" ~lo:0.05 ~hi:0.15
    (float_of_int shape.Gpp_workloads.Stassuij.nnz /. float_of_int (132 * 132))

let () =
  Alcotest.run "gpp_workloads"
    [
      ( "skeletons",
        [
          Alcotest.test_case "all validate" `Quick test_all_skeletons_validate;
          Alcotest.test_case "registry" `Quick test_registry_lookup;
          Alcotest.test_case "kernel structure" `Quick test_kernel_structure;
          Alcotest.test_case "iterations" `Quick test_iterations_scale_schedule;
        ] );
      ("vecadd", [ Alcotest.test_case "reference" `Quick test_vecadd_reference ]);
      ( "hotspot",
        [
          Alcotest.test_case "uniform equilibrium" `Quick test_hotspot_uniform_equilibrium;
          Alcotest.test_case "diffusion" `Quick test_hotspot_diffusion;
          Alcotest.test_case "power heats" `Quick test_hotspot_power_heats;
          Alcotest.test_case "errors" `Quick test_hotspot_errors;
        ] );
      ( "srad",
        [
          Alcotest.test_case "speckle reduction" `Quick test_srad_reduces_speckle;
          Alcotest.test_case "mean preservation" `Quick test_srad_preserves_mean;
          Alcotest.test_case "constant fixed point" `Quick test_srad_constant_fixed_point;
        ] );
      ( "cfd",
        [
          Alcotest.test_case "conservation" `Quick test_cfd_conservation;
          Alcotest.test_case "pulse spreads" `Quick test_cfd_pulse_spreads;
          Alcotest.test_case "positivity" `Quick test_cfd_positivity;
          Alcotest.test_case "errors" `Quick test_cfd_errors;
        ] );
      ( "stassuij",
        [
          Alcotest.test_case "csr well-formed" `Quick test_stassuij_csr_well_formed;
          Alcotest.test_case "csr = dense" `Quick test_stassuij_multiply_matches_dense;
          Alcotest.test_case "accumulate" `Quick test_stassuij_accumulate;
          Alcotest.test_case "dimension checks" `Quick test_stassuij_dimension_checks;
          Alcotest.test_case "paper shape" `Quick test_stassuij_shape_matches_paper;
        ] );
    ]
