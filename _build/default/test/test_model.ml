(* Tests for Gpp_model: characteristics, occupancy, and the analytic
   MWP/CWP kernel model. *)

module C = Gpp_model.Characteristics
module Occupancy = Gpp_model.Occupancy
module Analytic = Gpp_model.Analytic

let gpu = Gpp_arch.Gpu.quadro_fx_5600

let base_characteristics ?(grid_blocks = 512) ?(threads_per_block = 256) ?(flops = 20.0)
    ?(loads = 2.0) ?(stores = 1.0) ?(load_trans = 4.0) ?(store_trans = 2.0) ?scattered
    ?registers ?shared () =
  C.create ~kernel_name:"k" ~grid_blocks ~threads_per_block ~flops_per_thread:flops
    ~load_insts_per_thread:loads ~store_insts_per_thread:stores
    ~load_transactions_per_warp:load_trans ~store_transactions_per_warp:store_trans
    ?scattered_fraction:scattered ?registers_per_thread:registers ?shared_mem_per_block:shared ()

(* Characteristics *)

let test_characteristics_derived () =
  let c = base_characteristics ~grid_blocks:100 ~threads_per_block:192 () in
  Alcotest.(check int) "total threads" 19200 (C.total_threads c);
  Alcotest.(check int) "warps per block" 6 (C.warps_per_block ~gpu c);
  Alcotest.(check int) "total warps" 600 (C.total_warps ~gpu c);
  Helpers.close "mem insts" 3.0 (C.mem_insts_per_thread c);
  Helpers.close "total transactions" (600.0 *. 6.0) (C.total_transactions ~gpu c)

let test_transaction_bytes () =
  let streaming = base_characteristics ~scattered:0.0 () in
  Helpers.close "streaming = segment" 64.0 (C.transaction_bytes ~gpu streaming);
  let scattered = base_characteristics ~scattered:1.0 () in
  Helpers.close "scattered = half segment" 32.0 (C.transaction_bytes ~gpu scattered);
  let mixed = base_characteristics ~scattered:0.5 () in
  Helpers.close "mixed" 48.0 (C.transaction_bytes ~gpu mixed)

let test_characteristics_validation () =
  ignore (Helpers.check_ok "valid" (C.validate ~gpu (base_characteristics ())));
  ignore
    (Helpers.check_error "zero blocks" (C.validate ~gpu (base_characteristics ~grid_blocks:0 ())));
  ignore
    (Helpers.check_error "block too large"
       (C.validate ~gpu (base_characteristics ~threads_per_block:1024 ())));
  ignore
    (Helpers.check_error "too much shared"
       (C.validate ~gpu (base_characteristics ~shared:(64 * 1024) ())));
  ignore
    (Helpers.check_error "negative flops" (C.validate ~gpu (base_characteristics ~flops:(-1.0) ())))

(* Occupancy *)

let occupancy ?(tpb = 256) ?(regs = 10) ?(shared = 0) () =
  Occupancy.compute ~gpu ~threads_per_block:tpb ~registers_per_thread:regs
    ~shared_mem_per_block:shared

let test_occupancy_thread_limited () =
  let o = Helpers.check_ok "occupancy" (occupancy ~tpb:256 ~regs:8 ()) in
  (* 768 threads/SM / 256 = 3 blocks; registers: 8192/(8*256) = 4. *)
  Alcotest.(check int) "blocks" 3 o.Occupancy.blocks_per_sm;
  Alcotest.(check int) "warps" 24 o.Occupancy.active_warps;
  Helpers.close "full occupancy" 1.0 o.Occupancy.occupancy;
  Alcotest.(check bool) "limited by threads" true (o.Occupancy.limiter = Occupancy.Threads)

let test_occupancy_register_limited () =
  let o = Helpers.check_ok "occupancy" (occupancy ~tpb:256 ~regs:32 ()) in
  (* 8192 / (32*256) = 1 block. *)
  Alcotest.(check int) "blocks" 1 o.Occupancy.blocks_per_sm;
  Alcotest.(check bool) "limited by registers" true (o.Occupancy.limiter = Occupancy.Registers)

let test_occupancy_shared_limited () =
  let o = Helpers.check_ok "occupancy" (occupancy ~tpb:64 ~regs:8 ~shared:(8 * 1024) ()) in
  Alcotest.(check int) "blocks" 2 o.Occupancy.blocks_per_sm;
  Alcotest.(check bool) "limited by shared" true (o.Occupancy.limiter = Occupancy.Shared_memory)

let test_occupancy_block_slot_limited () =
  let o = Helpers.check_ok "occupancy" (occupancy ~tpb:64 ~regs:4 ()) in
  (* 768/64 = 12 blocks by threads, but only 8 block slots. *)
  Alcotest.(check int) "blocks" 8 o.Occupancy.blocks_per_sm;
  Alcotest.(check bool) "limited by slots" true (o.Occupancy.limiter = Occupancy.Blocks)

let test_occupancy_infeasible () =
  ignore (Helpers.check_error "huge block" (occupancy ~tpb:1024 ()));
  ignore (Helpers.check_error "register blowup" (occupancy ~tpb:512 ~regs:64 ()));
  ignore (Helpers.check_error "shared blowup" (occupancy ~shared:(32 * 1024) ()))

(* Analytic model *)

let project c = Helpers.check_ok "projection" (Analytic.project ~gpu c)

let test_projection_positive () =
  let p = project (base_characteristics ()) in
  Helpers.check_positive "time" p.Analytic.kernel_time;
  Helpers.check_positive "cycles" p.Analytic.cycles;
  Alcotest.(check bool) "includes launch overhead" true
    (p.Analytic.kernel_time >= gpu.Gpp_arch.Gpu.launch_overhead)

let test_more_flops_more_time () =
  let t flops = (project (base_characteristics ~flops ())).Analytic.kernel_time in
  Alcotest.(check bool) "monotone in flops" true (t 200.0 > t 20.0)

let test_more_transactions_more_time () =
  let t load_trans = (project (base_characteristics ~load_trans ())).Analytic.kernel_time in
  Alcotest.(check bool) "monotone in traffic" true (t 64.0 > t 4.0)

let test_memory_bound_detection () =
  (* Tiny compute, heavy traffic: memory-bound. *)
  let p = project (base_characteristics ~flops:1.0 ~load_trans:64.0 ~store_trans:32.0 ()) in
  Alcotest.(check bool) "memory bound" true (p.Analytic.bound = Analytic.Memory_bound);
  (* Heavy compute, light traffic: compute-bound. *)
  let p = project (base_characteristics ~flops:2000.0 ~load_trans:1.0 ~store_trans:1.0 ()) in
  Alcotest.(check bool) "compute bound" true (p.Analytic.bound = Analytic.Compute_bound)

let test_latency_bound_low_occupancy () =
  (* One small block per SM, few warps: latency cannot be hidden. *)
  let c =
    base_characteristics ~grid_blocks:16 ~threads_per_block:64 ~flops:2.0 ~registers:60 ()
  in
  let p = project c in
  Alcotest.(check bool) "latency bound" true (p.Analytic.bound = Analytic.Latency_bound)

let test_pure_compute_kernel () =
  let c =
    C.create ~kernel_name:"pure" ~grid_blocks:256 ~threads_per_block:256 ~flops_per_thread:100.0
      ~load_insts_per_thread:0.0 ~store_insts_per_thread:0.0 ~load_transactions_per_warp:0.0
      ~store_transactions_per_warp:0.0 ()
  in
  let p = project c in
  Alcotest.(check bool) "compute bound" true (p.Analytic.bound = Analytic.Compute_bound);
  Helpers.check_positive "time" p.Analytic.kernel_time

let test_memory_bound_time_tracks_bandwidth () =
  (* For a strongly memory-bound kernel the projected time approaches
     total traffic / achieved bandwidth. *)
  let grid_blocks = 4096 and load_trans = 64.0 and store_trans = 32.0 in
  let c =
    base_characteristics ~grid_blocks ~threads_per_block:256 ~flops:1.0 ~load_trans ~store_trans ()
  in
  let p = project c in
  let total_bytes = C.total_transactions ~gpu c *. C.transaction_bytes ~gpu c in
  let ideal =
    total_bytes /. (gpu.Gpp_arch.Gpu.dram_bandwidth *. Analytic.default_params.Analytic.achieved_bw_fraction)
  in
  Helpers.check_in_range "within 2x of bandwidth bound" ~lo:(0.8 *. ideal) ~hi:(2.5 *. ideal)
    p.Analytic.kernel_time

let test_scattered_slower_than_streaming_in_sim_not_model () =
  (* The analytic model only sees transaction counts and sizes; with the
     same counts, scattered traffic moves fewer bytes and can only be
     cheaper or equal.  (The simulator is where scatter hurts; see
     test_gpusim.) *)
  let streaming = project (base_characteristics ~scattered:0.0 ~load_trans:32.0 ()) in
  let scattered = project (base_characteristics ~scattered:1.0 ~load_trans:32.0 ()) in
  Alcotest.(check bool) "model does not punish scatter" true
    (scattered.Analytic.kernel_time <= streaming.Analytic.kernel_time +. 1e-9)

let test_divergence_costs () =
  let t factor =
    let c =
      C.create ~kernel_name:"d" ~grid_blocks:512 ~threads_per_block:256 ~flops_per_thread:100.0
        ~load_insts_per_thread:1.0 ~store_insts_per_thread:1.0 ~load_transactions_per_warp:2.0
        ~store_transactions_per_warp:2.0 ~divergence_factor:factor ()
    in
    (project c).Analytic.kernel_time
  in
  Alcotest.(check bool) "divergence slows compute" true (t 2.0 > t 1.0)

let test_projection_error_cases () =
  ignore
    (Helpers.check_error "invalid characteristics"
       (Analytic.project ~gpu (base_characteristics ~grid_blocks:0 ())));
  ignore
    (Helpers.check_error "unschedulable block"
       (Analytic.project ~gpu (base_characteristics ~registers:64 ~threads_per_block:512 ())))

let () =
  Alcotest.run "gpp_model"
    [
      ( "characteristics",
        [
          Alcotest.test_case "derived" `Quick test_characteristics_derived;
          Alcotest.test_case "transaction bytes" `Quick test_transaction_bytes;
          Alcotest.test_case "validation" `Quick test_characteristics_validation;
        ] );
      ( "occupancy",
        [
          Alcotest.test_case "thread limited" `Quick test_occupancy_thread_limited;
          Alcotest.test_case "register limited" `Quick test_occupancy_register_limited;
          Alcotest.test_case "shared limited" `Quick test_occupancy_shared_limited;
          Alcotest.test_case "block-slot limited" `Quick test_occupancy_block_slot_limited;
          Alcotest.test_case "infeasible" `Quick test_occupancy_infeasible;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "positive projection" `Quick test_projection_positive;
          Alcotest.test_case "monotone in flops" `Quick test_more_flops_more_time;
          Alcotest.test_case "monotone in traffic" `Quick test_more_transactions_more_time;
          Alcotest.test_case "bound detection" `Quick test_memory_bound_detection;
          Alcotest.test_case "latency bound" `Quick test_latency_bound_low_occupancy;
          Alcotest.test_case "pure compute" `Quick test_pure_compute_kernel;
          Alcotest.test_case "bandwidth bound" `Quick test_memory_bound_time_tracks_bandwidth;
          Alcotest.test_case "scatter neutrality" `Quick test_scattered_slower_than_streaming_in_sim_not_model;
          Alcotest.test_case "divergence" `Quick test_divergence_costs;
          Alcotest.test_case "error cases" `Quick test_projection_error_cases;
        ] );
    ]
