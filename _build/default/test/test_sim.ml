(* Tests for Gpp_sim: event queue, engine, FIFO server. *)

module Event_queue = Gpp_sim.Event_queue
module Engine = Gpp_sim.Engine
module Fifo_server = Gpp_sim.Fifo_server

(* Event queue *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push q ~time:t v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty after" true (Event_queue.is_empty q)

let test_queue_stable_ties () =
  let q = Event_queue.create () in
  List.iteri (fun i v -> Event_queue.push q ~time:5.0 (i, v)) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (snd (Option.get (Event_queue.pop q)))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:7.5 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.5) (Event_queue.peek_time q);
  Alcotest.(check int) "length" 1 (Event_queue.length q)

let test_queue_rejects_nan () =
  let q = Event_queue.create () in
  Helpers.check_raises_invalid "nan time" (fun () -> Event_queue.push q ~time:Float.nan ())

let test_queue_sorted_property =
  Helpers.qtest ~count:100 "pops are sorted"
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain acc =
        match Event_queue.pop q with None -> List.rev acc | Some (t, ()) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort Float.compare times)

(* Engine *)

let test_engine_runs_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~delay:2.0 (fun e -> log := ("b", Engine.now e) :: !log);
  Engine.schedule engine ~delay:1.0 (fun e -> log := ("a", Engine.now e) :: !log);
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9))))
    "order and clock" [ ("a", 1.0); ("b", 2.0) ] (List.rev !log);
  Alcotest.(check int) "processed" 2 (Engine.processed engine)

let test_engine_cascading_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    if !count < 5 then Engine.schedule e ~delay:1.0 tick
  in
  Engine.schedule engine ~delay:0.0 tick;
  Engine.run engine;
  Alcotest.(check int) "cascade depth" 5 !count;
  Helpers.close "final clock" 4.0 (Engine.now engine)

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule engine ~delay:t (fun _ -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0 ];
  Engine.run_until engine 2.0;
  Alcotest.(check (list (float 0.0))) "fired up to deadline" [ 2.0; 1.0 ] !fired;
  Alcotest.(check int) "pending" 1 (Engine.pending engine);
  Helpers.close "clock at deadline" 2.0 (Engine.now engine);
  (* Advancing past all events leaves the clock at the deadline. *)
  Engine.run_until engine 10.0;
  Helpers.close "clock advanced" 10.0 (Engine.now engine)

let test_engine_rejects_bad_schedule () =
  let engine = Engine.create () in
  Helpers.check_raises_invalid "negative delay" (fun () ->
      Engine.schedule engine ~delay:(-1.0) (fun _ -> ()));
  Engine.schedule engine ~delay:5.0 (fun _ -> ());
  Engine.run engine;
  Helpers.check_raises_invalid "past absolute time" (fun () ->
      Engine.schedule_at engine ~time:1.0 (fun _ -> ()))

(* Fifo server *)

let test_server_idle_reservation () =
  let s = Fifo_server.create ~name:"s" () in
  let start, finish = Fifo_server.reserve s ~arrival:1.0 ~service:2.0 in
  Helpers.close "starts at arrival" 1.0 start;
  Helpers.close "finish" 3.0 finish;
  Helpers.close "busy" 2.0 (Fifo_server.busy_time s);
  Helpers.close "no queueing" 0.0 (Fifo_server.queueing_delay s);
  Alcotest.(check int) "served" 1 (Fifo_server.served s)

let test_server_queues_overlapping () =
  let s = Fifo_server.create () in
  let _ = Fifo_server.reserve s ~arrival:0.0 ~service:5.0 in
  let start, finish = Fifo_server.reserve s ~arrival:1.0 ~service:2.0 in
  Helpers.close "queued start" 5.0 start;
  Helpers.close "queued finish" 7.0 finish;
  Helpers.close "queueing delay" 4.0 (Fifo_server.queueing_delay s);
  Helpers.close "next_free" 7.0 (Fifo_server.next_free s)

let test_server_fifo_violation () =
  let s = Fifo_server.create () in
  let _ = Fifo_server.reserve s ~arrival:5.0 ~service:1.0 in
  Helpers.check_raises_invalid "arrival regression" (fun () ->
      Fifo_server.reserve s ~arrival:4.0 ~service:1.0)

let test_server_bad_service () =
  let s = Fifo_server.create () in
  Helpers.check_raises_invalid "negative service" (fun () ->
      Fifo_server.reserve s ~arrival:0.0 ~service:(-1.0))

let test_server_utilization_and_reset () =
  let s = Fifo_server.create () in
  let _ = Fifo_server.reserve s ~arrival:0.0 ~service:4.0 in
  Helpers.close "utilization" 0.5 (Fifo_server.utilization s ~horizon:8.0);
  Helpers.close "degenerate horizon" 0.0 (Fifo_server.utilization s ~horizon:0.0);
  Fifo_server.reset s;
  Helpers.close "reset busy" 0.0 (Fifo_server.busy_time s);
  Alcotest.(check int) "reset served" 0 (Fifo_server.served s)

let test_server_conservation =
  Helpers.qtest ~count:100 "work conservation: finish >= sum of services"
    QCheck2.Gen.(list_size (int_range 1 50) (pair (float_range 0.0 10.0) (float_range 0.0 5.0)))
    (fun jobs ->
      let s = Fifo_server.create () in
      (* Sort arrivals to satisfy the FIFO precondition. *)
      let jobs = List.sort (fun (a, _) (b, _) -> Float.compare a b) jobs in
      let total_service = List.fold_left (fun acc (_, sv) -> acc +. sv) 0.0 jobs in
      let last_finish =
        List.fold_left (fun _ (arrival, service) -> snd (Fifo_server.reserve s ~arrival ~service)) 0.0 jobs
      in
      last_finish +. 1e-9 >= total_service
      && Float.abs (Fifo_server.busy_time s -. total_service) < 1e-9)

let () =
  Alcotest.run "gpp_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "stable ties" `Quick test_queue_stable_ties;
          Alcotest.test_case "peek/length" `Quick test_queue_peek;
          Alcotest.test_case "rejects nan" `Quick test_queue_rejects_nan;
          test_queue_sorted_property;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "cascading" `Quick test_engine_cascading_events;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "bad schedules" `Quick test_engine_rejects_bad_schedule;
        ] );
      ( "fifo_server",
        [
          Alcotest.test_case "idle reservation" `Quick test_server_idle_reservation;
          Alcotest.test_case "queueing" `Quick test_server_queues_overlapping;
          Alcotest.test_case "fifo violation" `Quick test_server_fifo_violation;
          Alcotest.test_case "bad service" `Quick test_server_bad_service;
          Alcotest.test_case "utilization/reset" `Quick test_server_utilization_and_reset;
          test_server_conservation;
        ] );
    ]
