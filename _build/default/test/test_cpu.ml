(* Tests for Gpp_cpu: the multicore roofline baseline model. *)

module Timing = Gpp_cpu.Timing
module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl

let cpu = Gpp_arch.Cpu.xeon_e5405

let streaming_kernel ~n ~flops =
  Ir.kernel "stream"
    ~loops:[ Ir.loop "i" ~extent:n ]
    ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute flops; Ir.store "b" [ Ix.var "i" ] ]

let streaming_decls n = [ Decl.dense "a" ~dims:[ n ]; Decl.dense "b" ~dims:[ n ] ]

let test_breakdown_consistency () =
  let n = 1 lsl 20 in
  let b = Timing.kernel_breakdown ~cpu ~decls:(streaming_decls n) (streaming_kernel ~n ~flops:1.0) in
  Helpers.check_positive "time" b.Timing.time;
  Helpers.check_positive "memory" b.Timing.memory_time;
  Helpers.check_positive "compute" b.Timing.compute_time;
  Helpers.close ~tolerance:1e-12 "time = max + overhead"
    (Float.max b.Timing.compute_time b.Timing.memory_time +. b.Timing.overhead)
    b.Timing.time

let test_bound_classification () =
  let n = 1 lsl 20 in
  let decls = streaming_decls n in
  let light = Timing.kernel_breakdown ~cpu ~decls (streaming_kernel ~n ~flops:1.0) in
  Alcotest.(check bool) "1 flop/elem is memory bound" true (light.Timing.bound = Timing.Memory_bound);
  let heavy = Timing.kernel_breakdown ~cpu ~decls (streaming_kernel ~n ~flops:500.0) in
  Alcotest.(check bool) "500 flops/elem is compute bound" true
    (heavy.Timing.bound = Timing.Compute_bound)

let test_memory_time_from_unique_traffic () =
  (* A 9-point stencil accesses 10 elements per cell but touches each
     array element once: DRAM traffic must reflect sections, not access
     counts. *)
  let n = 512 in
  let program = Gpp_workloads.Hotspot.program ~n () in
  let kernel = List.hd program.Gpp_skeleton.Program.kernels in
  let b = Timing.kernel_breakdown ~cpu ~decls:program.Gpp_skeleton.Program.arrays kernel in
  (* temp + power reads + temp_out writes = 3 n^2 floats. *)
  Helpers.close_rel ~tolerance:0.01 "compulsory traffic"
    (float_of_int (3 * 4 * n * n))
    b.Timing.traffic_bytes

let test_heavy_ops_cost () =
  let n = 1 lsl 18 in
  let decls = streaming_decls n in
  let without =
    Timing.kernel_breakdown ~cpu ~decls
      (Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:n ]
         ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 10.0; Ir.store "b" [ Ix.var "i" ] ])
  in
  let with_heavy =
    Timing.kernel_breakdown ~cpu ~decls
      (Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:n ]
         ~body:
           [
             Ir.load "a" [ Ix.var "i" ];
             Ir.compute ~heavy_ops:4.0 10.0;
             Ir.store "b" [ Ix.var "i" ];
           ])
  in
  Alcotest.(check bool) "heavy ops slow the CPU" true
    (with_heavy.Timing.compute_time > 2.0 *. without.Timing.compute_time)

let test_scaling_with_size () =
  let time n = Timing.kernel_time ~cpu ~decls:(streaming_decls n) (streaming_kernel ~n ~flops:1.0) in
  let t1 = time (1 lsl 20) and t4 = time (1 lsl 22) in
  (* 4x the data, ~4x the time (minus the constant overhead). *)
  Helpers.check_in_range "scaling" ~lo:3.0 ~hi:5.0 (t4 /. t1)

let test_cache_bandwidth_ceiling () =
  (* A kernel that re-reads the same element many times per iteration
     moves little DRAM traffic but hammers the cache: its memory time
     must be set by the cache-bandwidth term, not the DRAM term. *)
  let n = 1 lsl 20 in
  let reread_kernel =
    Ir.kernel "reread"
      ~loops:[ Ir.loop "i" ~extent:n ]
      ~body:
        (List.init 30 (fun _ -> Ir.load "a" [ Ix.var "i" ])
        @ [ Ir.compute 1.0; Ir.store "b" [ Ix.var "i" ] ])
  in
  let b = Timing.kernel_breakdown ~cpu ~decls:(streaming_decls n) reread_kernel in
  let access_bytes = float_of_int (31 * 4 * n) in
  let cache_time = access_bytes /. cpu.Gpp_arch.Cpu.cache_bandwidth in
  let dram_time =
    b.Timing.traffic_bytes /. (cpu.Gpp_arch.Cpu.mem_bandwidth *. cpu.Gpp_arch.Cpu.achieved_bw_fraction)
  in
  Alcotest.(check bool) "cache term dominates" true (cache_time > dram_time);
  Helpers.close_rel ~tolerance:0.001 "memory time = cache time" cache_time b.Timing.memory_time

let test_program_time_sums_schedule () =
  let p = Helpers.chain_program ~n:(1 lsl 16) () in
  let by_kernel = Timing.program_breakdowns ~cpu p in
  let expected =
    List.fold_left
      (fun acc (_, (b : Timing.breakdown)) -> acc +. b.Timing.time)
      0.0 by_kernel
  in
  Helpers.close ~tolerance:1e-12 "program = sum of schedule" expected (Timing.program_time ~cpu p);
  (* Doubling the schedule doubles the time. *)
  let doubled =
    {
      p with
      Gpp_skeleton.Program.schedule =
        p.Gpp_skeleton.Program.schedule @ p.Gpp_skeleton.Program.schedule;
    }
  in
  Helpers.close_rel ~tolerance:0.001 "doubled schedule" (2.0 *. expected)
    (Timing.program_time ~cpu doubled)

let test_bw_override () =
  let n = 1 lsl 22 in
  let slow =
    Timing.kernel_breakdown
      ~params:{ Timing.default_params with Timing.streaming_bw_fraction_override = Some 0.1 }
      ~cpu ~decls:(streaming_decls n) (streaming_kernel ~n ~flops:1.0)
  in
  let fast =
    Timing.kernel_breakdown
      ~params:{ Timing.default_params with Timing.streaming_bw_fraction_override = Some 1.0 }
      ~cpu ~decls:(streaming_decls n) (streaming_kernel ~n ~flops:1.0)
  in
  Alcotest.(check bool) "override changes memory time" true
    (slow.Timing.memory_time > 5.0 *. fast.Timing.memory_time)

let () =
  Alcotest.run "gpp_cpu"
    [
      ( "timing",
        [
          Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
          Alcotest.test_case "bound classification" `Quick test_bound_classification;
          Alcotest.test_case "unique traffic" `Quick test_memory_time_from_unique_traffic;
          Alcotest.test_case "heavy ops" `Quick test_heavy_ops_cost;
          Alcotest.test_case "size scaling" `Quick test_scaling_with_size;
          Alcotest.test_case "cache bandwidth ceiling" `Quick test_cache_bandwidth_ceiling;
          Alcotest.test_case "program time" `Quick test_program_time_sums_schedule;
          Alcotest.test_case "bandwidth override" `Quick test_bw_override;
        ] );
    ]
