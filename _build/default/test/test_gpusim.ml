(* Tests for Gpp_gpusim: the transaction-level GPU simulator. *)

module Sim = Gpp_gpusim.Gpu_sim
module C = Gpp_model.Characteristics
module Rng = Gpp_util.Rng

let gpu = Gpp_arch.Gpu.quadro_fx_5600

let characteristics ?(grid_blocks = 256) ?(threads_per_block = 256) ?(flops = 20.0)
    ?(loads = 2.0) ?(stores = 1.0) ?(load_trans = 4.0) ?(store_trans = 2.0) ?(scattered = 0.0) ()
    =
  C.create ~kernel_name:"simk" ~grid_blocks ~threads_per_block ~flops_per_thread:flops
    ~load_insts_per_thread:loads ~store_insts_per_thread:stores
    ~load_transactions_per_warp:load_trans ~store_transactions_per_warp:store_trans
    ~scattered_fraction:scattered ()

let noiseless = { Sim.default_config with Sim.noise_sigma = 0.0; latency_jitter = 0.0 }

let run ?(config = Sim.default_config) ?(seed = 1L) c =
  Helpers.check_ok "simulation" (Sim.run ~config ~rng:(Rng.create seed) ~gpu c)

let test_result_sanity () =
  let r = run (characteristics ()) in
  Helpers.check_positive "time" r.Sim.time;
  Helpers.check_positive "busy" r.Sim.busy_time;
  Helpers.check_in_range "dram util" ~lo:0.0 ~hi:1.0 r.Sim.dram_utilization;
  Helpers.check_in_range "issue util" ~lo:0.0 ~hi:1.0 r.Sim.issue_utilization;
  Alcotest.(check int) "all blocks simulated" 256 r.Sim.simulated_blocks;
  Alcotest.(check bool) "no extrapolation" false r.Sim.extrapolated;
  Alcotest.(check bool) "events processed" true (r.Sim.events > 0);
  Alcotest.(check bool) "includes launch overhead" true
    (r.Sim.time > gpu.Gpp_arch.Gpu.launch_overhead /. 2.0)

let test_determinism () =
  let a = run ~seed:7L (characteristics ()) and b = run ~seed:7L (characteristics ()) in
  Helpers.close "same seed same time" a.Sim.time b.Sim.time

let test_noise_varies_runs () =
  let rng = Rng.create 5L in
  let samples =
    List.init 10 (fun _ ->
        (Helpers.check_ok "sim" (Sim.run ~rng ~gpu (characteristics ()))).Sim.time)
  in
  Alcotest.(check bool) "noisy runs differ" true
    (List.length (List.sort_uniq Float.compare samples) > 1)

let test_more_work_more_time () =
  let t flops = (run ~config:noiseless (characteristics ~flops ())).Sim.time in
  Alcotest.(check bool) "monotone in compute" true (t 200.0 > t 20.0);
  let t trans = (run ~config:noiseless (characteristics ~load_trans:trans ())).Sim.time in
  Alcotest.(check bool) "monotone in traffic" true (t 64.0 > t 4.0)

let test_scattered_traffic_slower () =
  (* Same loads per thread, but a gather explodes into one transaction
     per lane (32x) where a streaming access coalesces into two — as the
     synthesis step derives them.  The simulator must charge heavily for
     the scattered version on a memory-bound kernel, even though each
     scattered transaction moves half a segment. *)
  let loads = 4.0 in
  let streaming =
    run ~config:noiseless
      (characteristics ~flops:1.0 ~loads ~load_trans:(2.0 *. loads) ~scattered:0.0 ())
  in
  let scattered =
    run ~config:noiseless
      (characteristics ~flops:1.0 ~loads ~load_trans:(32.0 *. loads) ~scattered:1.0 ())
  in
  Alcotest.(check bool) "scatter is slower in the simulator" true
    (scattered.Sim.time > 2.0 *. streaming.Sim.time)

let test_grid_scaling () =
  let t blocks = (run ~config:noiseless (characteristics ~grid_blocks:blocks ())).Sim.time in
  let t256 = t 256 and t1024 = t 1024 in
  (* 4x the blocks: between 2x and 6x the time (waves overlap). *)
  Helpers.check_in_range "grid scaling" ~lo:2.0 ~hi:6.0 (t1024 /. t256)

let test_extrapolation_close_to_full_sim () =
  let c = characteristics ~grid_blocks:4096 () in
  let full =
    run ~config:{ noiseless with Sim.max_simulated_blocks = 100_000 } c
  in
  let sampled = run ~config:{ noiseless with Sim.max_simulated_blocks = 512 } c in
  Alcotest.(check bool) "full sim not extrapolated" false full.Sim.extrapolated;
  Alcotest.(check bool) "sampled extrapolated" true sampled.Sim.extrapolated;
  Alcotest.(check bool) "sampled simulated fewer" true
    (sampled.Sim.simulated_blocks < full.Sim.simulated_blocks);
  Helpers.close_rel ~tolerance:0.1 "wave sampling accurate" full.Sim.time sampled.Sim.time

let test_memory_bound_tracks_bandwidth () =
  (* A strongly memory-bound kernel should complete in roughly
     total-bytes / sustained-bandwidth. *)
  let c = characteristics ~grid_blocks:2048 ~flops:1.0 ~load_trans:64.0 ~store_trans:32.0 () in
  let r = run ~config:{ noiseless with Sim.max_simulated_blocks = 100_000 } c in
  let bytes = C.total_transactions ~gpu c *. C.transaction_bytes ~gpu c in
  let floor_time =
    bytes /. (gpu.Gpp_arch.Gpu.dram_bandwidth *. noiseless.Sim.streaming_efficiency)
  in
  Alcotest.(check bool) "not faster than the DRAM floor" true (r.Sim.busy_time >= floor_time *. 0.95);
  Helpers.check_in_range "within 2x of the floor" ~lo:0.9 ~hi:2.0 (r.Sim.busy_time /. floor_time);
  Alcotest.(check bool) "dram well utilized" true (r.Sim.dram_utilization > 0.5)

let test_unschedulable_error () =
  let c =
    C.create ~kernel_name:"bad" ~grid_blocks:1 ~threads_per_block:512 ~registers_per_thread:63
      ~flops_per_thread:1.0 ~load_insts_per_thread:0.0 ~store_insts_per_thread:0.0
      ~load_transactions_per_warp:0.0 ~store_transactions_per_warp:0.0 ()
  in
  match Sim.run ~rng:(Rng.create 1L) ~gpu c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an occupancy error"

let test_run_mean () =
  let c = characteristics () in
  let mean = Helpers.check_ok "mean" (Sim.run_mean ~runs:10 ~seed:3L ~gpu c) in
  let single = run ~seed:3L c in
  Helpers.close_rel ~tolerance:0.2 "mean near a single run" single.Sim.time mean;
  Helpers.check_raises_invalid "zero runs" (fun () ->
      ignore (Sim.run_mean ~runs:0 ~seed:1L ~gpu c))

let test_pure_compute_kernel () =
  let c =
    C.create ~kernel_name:"pure" ~grid_blocks:128 ~threads_per_block:256 ~flops_per_thread:50.0
      ~load_insts_per_thread:0.0 ~store_insts_per_thread:0.0 ~load_transactions_per_warp:0.0
      ~store_transactions_per_warp:0.0 ()
  in
  let r = run ~config:noiseless c in
  Helpers.check_positive "time" r.Sim.time;
  Helpers.close "no dram traffic" 0.0 r.Sim.dram_utilization

let test_agrees_with_model_on_regular_kernels () =
  (* For regular streaming kernels the simulator and the analytic model
     should land within ~50% of each other: the paper's stencil kernels
     show ~0.7-15% kernel errors. *)
  let c = characteristics ~grid_blocks:1024 ~flops:30.0 ~load_trans:6.0 ~store_trans:2.0 () in
  let sim = run ~config:noiseless c in
  let model = Helpers.check_ok "model" (Gpp_model.Analytic.project ~gpu c) in
  Helpers.check_in_range "model/sim agreement" ~lo:0.5 ~hi:1.5
    (model.Gpp_model.Analytic.kernel_time /. sim.Sim.time)

(* Tracing *)

module Trace = Gpp_gpusim.Trace

let test_trace_records_categories () =
  let tr = Trace.create () in
  let r =
    Helpers.check_ok "traced run"
      (Sim.run ~config:noiseless ~trace:tr ~rng:(Rng.create 2L) ~gpu
         (characteristics ~grid_blocks:32 ()))
  in
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  Alcotest.(check int) "nothing dropped on a small run" 0 (Trace.dropped tr);
  let categories =
    Trace.events tr |> List.map (fun e -> e.Trace.category) |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "all categories" [ "block"; "compute"; "dram" ] categories;
  (* One block event per simulated block. *)
  let blocks =
    List.length (List.filter (fun e -> e.Trace.category = "block") (Trace.events tr))
  in
  Alcotest.(check int) "one event per block" r.Sim.simulated_blocks blocks;
  (* Event spans stay within the simulated busy window. *)
  Alcotest.(check bool) "span within busy time" true (Trace.span tr <= r.Sim.busy_time +. 1e-9)

let test_trace_chrome_json () =
  let tr = Trace.create () in
  Trace.record tr ~name:"say \"hi\"" ~category:"compute" ~track:3 ~start:1e-6 ~duration:2e-6;
  let json = Trace.to_chrome_json tr in
  Helpers.check_contains "escaped name" ~needle:"say \\\"hi\\\"" json;
  Helpers.check_contains "microseconds" ~needle:"\"ts\":1.000" json;
  Helpers.check_contains "duration" ~needle:"\"dur\":2.000" json;
  Helpers.check_contains "track" ~needle:"\"tid\":3" json;
  Alcotest.(check bool) "array shape" true
    (String.length json > 2 && json.[0] = '[' && String.contains json ']')

let test_trace_capacity () =
  let tr = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.record tr ~name:(string_of_int i) ~category:"compute" ~track:0 ~start:0.0
      ~duration:1.0
  done;
  Alcotest.(check int) "kept two" 2 (Trace.length tr);
  Alcotest.(check int) "dropped three" 3 (Trace.dropped tr);
  Helpers.check_contains "summary mentions drops" ~needle:"3 dropped" (Trace.summary tr)

let () =
  Alcotest.run "gpp_gpusim"
    [
      ( "simulator",
        [
          Alcotest.test_case "result sanity" `Quick test_result_sanity;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "noise" `Quick test_noise_varies_runs;
          Alcotest.test_case "monotone in work" `Quick test_more_work_more_time;
          Alcotest.test_case "scatter penalty" `Quick test_scattered_traffic_slower;
          Alcotest.test_case "grid scaling" `Quick test_grid_scaling;
          Alcotest.test_case "wave sampling" `Quick test_extrapolation_close_to_full_sim;
          Alcotest.test_case "bandwidth floor" `Quick test_memory_bound_tracks_bandwidth;
          Alcotest.test_case "unschedulable" `Quick test_unschedulable_error;
          Alcotest.test_case "run_mean" `Quick test_run_mean;
          Alcotest.test_case "pure compute" `Quick test_pure_compute_kernel;
          Alcotest.test_case "model agreement" `Quick test_agrees_with_model_on_regular_kernels;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records categories" `Quick test_trace_records_categories;
          Alcotest.test_case "chrome json" `Quick test_trace_chrome_json;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
        ] );
    ]
