(* Tests for Gpp_skeleton: index expressions, declarations, kernel IR,
   programs, and summaries. *)

module Ix = Gpp_skeleton.Index_expr
module Ir = Gpp_skeleton.Ir
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program
module Summary = Gpp_skeleton.Summary

(* Index expressions *)

let expr_gen =
  (* Random affine expressions over variables i, j, k. *)
  QCheck2.Gen.(
    let* ci = int_range (-5) 5 in
    let* cj = int_range (-5) 5 in
    let* ck = int_range (-5) 5 in
    let* c = int_range (-100) 100 in
    return
      (Ix.add
         (Ix.add (Ix.var ~coeff:ci "i") (Ix.var ~coeff:cj "j"))
         (Ix.offset (Ix.var ~coeff:ck "k") c)))

let env_gen = QCheck2.Gen.(triple (int_range 0 20) (int_range 0 20) (int_range 0 20))

let env_of (i, j, k) = function
  | "i" -> i
  | "j" -> j
  | "k" -> k
  | v -> Alcotest.failf "unexpected variable %s" v

let test_eval_add_homomorphism =
  Helpers.qtest "eval of sum = sum of evals"
    QCheck2.Gen.(triple expr_gen expr_gen env_gen)
    (fun (a, b, env) ->
      let env = env_of env in
      Ix.eval env (Ix.add a b) = Ix.eval env a + Ix.eval env b)

let test_eval_scale =
  Helpers.qtest "eval of scale"
    QCheck2.Gen.(triple (int_range (-4) 4) expr_gen env_gen)
    (fun (k, e, env) ->
      let env = env_of env in
      Ix.eval env (Ix.scale k e) = k * Ix.eval env e)

let test_range_contains_eval =
  Helpers.qtest "range bounds every evaluation"
    QCheck2.Gen.(pair expr_gen env_gen)
    (fun (e, env) ->
      let lo, hi = Ix.range (fun _ -> (0, 20)) e in
      let v = Ix.eval (env_of env) e in
      lo <= v && v <= hi)

let test_expr_basics () =
  let e = Ix.add (Ix.var ~coeff:3 "i") (Ix.offset (Ix.var "j") 7) in
  Alcotest.(check int) "coeff i" 3 (Ix.coeff_of e "i");
  Alcotest.(check int) "coeff j" 1 (Ix.coeff_of e "j");
  Alcotest.(check int) "coeff absent" 0 (Ix.coeff_of e "z");
  Alcotest.(check int) "const" 7 (Ix.constant_part e);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (Ix.vars e);
  Alcotest.(check bool) "not constant" false (Ix.is_constant e);
  Alcotest.(check bool) "constant" true (Ix.is_constant (Ix.const 4));
  Alcotest.(check int) "gcd stride" 3 (Ix.gcd_stride e ~except:[ "j" ]);
  Alcotest.(check int) "gcd none" 0 (Ix.gcd_stride (Ix.const 5) ~except:[])

let test_expr_cancellation () =
  let e = Ix.sub (Ix.var "i") (Ix.var "i") in
  Alcotest.(check bool) "i - i is constant" true (Ix.is_constant e);
  Alcotest.(check bool) "equals zero" true (Ix.equal e (Ix.const 0))

let test_expr_pp () =
  Alcotest.(check string) "pretty" "2*i + j - 1"
    (Ix.to_string (Ix.offset (Ix.add (Ix.var ~coeff:2 "i") (Ix.var "j")) (-1)));
  Alcotest.(check string) "const only" "42" (Ix.to_string (Ix.const 42))

(* Declarations *)

let test_decl_basics () =
  let d = Decl.dense "a" ~dims:[ 4; 8 ] in
  Alcotest.(check int) "elements" 32 (Decl.elements d);
  Alcotest.(check int) "footprint" 128 (Decl.footprint_bytes d);
  ignore (Helpers.check_ok "valid" (Decl.validate d));
  ignore
    (Helpers.check_error "bad extent" (Decl.validate (Decl.dense "b" ~dims:[ 0 ])));
  ignore
    (Helpers.check_error "bad nnz"
       (Decl.validate (Decl.sparse "c" ~nnz:100 ~dims:[ 10 ])));
  ignore (Helpers.check_ok "good sparse" (Decl.validate (Decl.sparse "d" ~nnz:5 ~dims:[ 10 ])))

(* Kernel IR *)

let simple_kernel n =
  Ir.kernel "k"
    ~loops:[ Ir.loop "i" ~extent:n; Ir.loop ~parallel:false "j" ~extent:4 ]
    ~body:
      [
        Ir.load "a" [ Ix.var "i" ];
        Ir.compute ~heavy_ops:1.0 2.0;
        Ir.branch ~probability:0.5 [ Ir.store "b" [ Ix.var "i" ] ];
      ]

let simple_decls n = [ Decl.dense "a" ~dims:[ n ]; Decl.dense "b" ~dims:[ n ] ]

let test_kernel_counts () =
  let k = simple_kernel 100 in
  Alcotest.(check int) "trip count" 400 (Ir.trip_count k);
  Alcotest.(check int) "parallel iterations" 100 (Ir.parallel_iterations k);
  Alcotest.(check (pair int int)) "loop bounds" (0, 99) (Ir.loop_bounds k "i");
  Alcotest.check_raises "unbound" Not_found (fun () -> ignore (Ir.loop_bounds k "z"))

let test_fold_refs_weights () =
  let k = simple_kernel 10 in
  let weights = List.map fst (Ir.refs k) in
  Alcotest.(check (list (float 1e-9))) "weights" [ 1.0; 0.5 ] weights

let test_kernel_validation () =
  let decls = simple_decls 100 in
  ignore (Helpers.check_ok "valid kernel" (Ir.validate ~decls (simple_kernel 100)));
  let bad_array =
    Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:4 ] ~body:[ Ir.load "zz" [ Ix.var "i" ] ]
  in
  Helpers.check_contains "undeclared" ~needle:"undeclared"
    (Helpers.check_error "undeclared array" (Ir.validate ~decls bad_array));
  let bad_var =
    Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:4 ] ~body:[ Ir.load "a" [ Ix.var "q" ] ]
  in
  Helpers.check_contains "unbound var" ~needle:"unbound"
    (Helpers.check_error "unbound variable" (Ir.validate ~decls bad_var));
  let bad_rank =
    Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:4 ]
      ~body:[ Ir.load "a" [ Ix.var "i"; Ix.var "i" ] ]
  in
  ignore (Helpers.check_error "rank mismatch" (Ir.validate ~decls bad_rank));
  let bad_prob =
    Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:4 ]
      ~body:[ Ir.branch ~probability:1.5 [ Ir.compute 1.0 ] ]
  in
  ignore (Helpers.check_error "bad probability" (Ir.validate ~decls bad_prob));
  let dup_vars =
    Ir.kernel "k"
      ~loops:[ Ir.loop "i" ~extent:4; Ir.loop "i" ~extent:2 ]
      ~body:[ Ir.compute 1.0 ]
  in
  ignore (Helpers.check_error "duplicate loop vars" (Ir.validate ~decls dup_vars));
  let bad_offset =
    Ir.kernel "k" ~loops:[ Ir.loop "i" ~extent:4 ]
      ~body:[ Ir.load_indirect "a" ~via:"b" ~offset:[ Ix.var "q" ] ]
  in
  ignore (Helpers.check_error "unbound offset var" (Ir.validate ~decls bad_offset))

(* Programs *)

let test_program_flatten () =
  let p = Helpers.chain_program () in
  Alcotest.(check (list string)) "flat schedule" [ "producer"; "consumer" ]
    (Program.flatten_schedule p);
  Alcotest.(check int) "invocation count" 2 (Program.invocation_count p)

let test_program_repeat () =
  let p = Helpers.chain_program () in
  let iterated =
    { p with Program.schedule = [ Program.Repeat (3, [ Program.Call "producer" ]) ] }
  in
  Alcotest.(check (list string)) "repeat expands"
    [ "producer"; "producer"; "producer" ]
    (Program.flatten_schedule iterated);
  let rescaled = Program.with_iterations iterated 5 in
  Alcotest.(check int) "with_iterations rescales" 5 (Program.invocation_count rescaled);
  (* Programs without Repeat are unchanged. *)
  let unchanged = Program.with_iterations p 9 in
  Alcotest.(check int) "no repeat unchanged" 2 (Program.invocation_count unchanged);
  Helpers.check_raises_invalid "bad iteration count" (fun () ->
      ignore (Program.with_iterations p 0))

let test_program_validation () =
  let p = Helpers.chain_program () in
  ignore (Helpers.check_ok "valid program" (Program.validate p));
  let bad_call = { p with Program.schedule = [ Program.Call "missing" ] } in
  ignore (Helpers.check_error "missing kernel" (Program.validate bad_call));
  let bad_repeat = { p with Program.schedule = [ Program.Repeat (0, [ Program.Call "producer" ]) ] } in
  ignore (Helpers.check_error "zero repeat" (Program.validate bad_repeat));
  let bad_temp = { p with Program.temporaries = [ "ghost" ] } in
  ignore (Helpers.check_error "ghost temporary" (Program.validate bad_temp));
  let empty_schedule = { p with Program.schedule = [] } in
  ignore (Helpers.check_error "empty schedule" (Program.validate empty_schedule))

let test_program_lookup () =
  let p = Helpers.chain_program () in
  Alcotest.(check bool) "find" true (Program.find_kernel p "producer" <> None);
  Alcotest.(check bool) "miss" true (Program.find_kernel p "nope" = None);
  Alcotest.check_raises "kernel_exn" Not_found (fun () -> ignore (Program.kernel_exn p "nope"))

(* Summaries *)

let test_summary_aggregates () =
  let k = simple_kernel 100 in
  let s = Summary.of_kernel ~decls:(simple_decls 100) k in
  Alcotest.(check int) "trip" 400 s.Summary.trip_count;
  Helpers.close "flops" 2.0 s.Summary.flops_per_iter;
  Helpers.close "heavy" 1.0 s.Summary.heavy_ops_per_iter;
  Helpers.close "loads" 1.0 s.Summary.loads_per_iter;
  Helpers.close "stores (branch-weighted)" 0.5 s.Summary.stores_per_iter;
  Helpers.close "load bytes" 4.0 s.Summary.load_bytes_per_iter;
  Helpers.close "store bytes" 2.0 s.Summary.store_bytes_per_iter;
  Helpers.close "total flops" 800.0 (Summary.total_flops s);
  Helpers.close "total bytes" 2400.0 (Summary.total_bytes s);
  Helpers.close "intensity" (800.0 /. 2400.0) (Summary.arithmetic_intensity s);
  (* The branch is divergent by default: the store statement runs under
     it with weight 0.5 of 2.5 total statement weight. *)
  Helpers.close "divergent weight" 0.2 s.Summary.divergent_weight;
  Alcotest.(check bool) "no indirect" false s.Summary.has_indirect

let test_summary_indirect_flag () =
  let k =
    Ir.kernel "g" ~loops:[ Ir.loop "i" ~extent:8 ]
      ~body:[ Ir.load_indirect "a" ~via:"b"; Ir.compute 1.0 ]
  in
  let s = Summary.of_kernel ~decls:(simple_decls 8) k in
  Alcotest.(check bool) "indirect flagged" true s.Summary.has_indirect

let test_summary_pure_compute () =
  let k = Ir.kernel "c" ~loops:[ Ir.loop "i" ~extent:8 ] ~body:[ Ir.compute 5.0 ] in
  let s = Summary.of_kernel ~decls:[] k in
  Alcotest.(check bool) "infinite intensity" true
    (Float.is_integer (Summary.arithmetic_intensity s) = false
    || Summary.arithmetic_intensity s = Float.infinity)

(* Parser *)

let parse_ok source = Helpers.check_ok "parse" (Gpp_skeleton.Parser.parse source)

let parse_err source = Helpers.check_error "parse" (Gpp_skeleton.Parser.parse source)

let minimal_source =
  {|
# a minimal valid skeleton
program mini
array a dense 128
array b dense 128
kernel copy
  loop i parallel 128
  load a [i]
  compute flops 1
  store b [i]
end
schedule
  call copy
end
|}

let test_parse_minimal () =
  let p = parse_ok minimal_source in
  Alcotest.(check string) "name" "mini" p.Program.name;
  Alcotest.(check int) "arrays" 2 (List.length p.Program.arrays);
  Alcotest.(check int) "kernels" 1 (List.length p.Program.kernels);
  Alcotest.(check (list string)) "schedule" [ "copy" ] (Program.flatten_schedule p)

let test_parse_expressions () =
  let p =
    parse_ok
      {|
program exprs
array m dense 64 64
array o dense 64 64
kernel k
  loop y parallel 64
  loop x parallel 64
  load m [y-1, x+1]
  load m [2*y, x]
  load m [y, 3]
  compute flops 1
  store o [y, x]
end
schedule
  call k
end
|}
  in
  let kernel = List.hd p.Program.kernels in
  match Ir.refs kernel with
  | [ (_, r1); (_, r2); (_, r3); _ ] ->
      (match r1.Ir.pattern with
      | Ir.Affine [ e1; e2 ] ->
          Alcotest.(check int) "y-1 const" (-1) (Ix.constant_part e1);
          Alcotest.(check int) "x+1 const" 1 (Ix.constant_part e2)
      | _ -> Alcotest.fail "expected affine");
      (match r2.Ir.pattern with
      | Ir.Affine [ e1; _ ] -> Alcotest.(check int) "2*y coeff" 2 (Ix.coeff_of e1 "y")
      | _ -> Alcotest.fail "expected affine");
      (match r3.Ir.pattern with
      | Ir.Affine [ _; e2 ] ->
          Alcotest.(check bool) "constant subscript" true (Ix.is_constant e2);
          Alcotest.(check int) "value" 3 (Ix.constant_part e2)
      | _ -> Alcotest.fail "expected affine")
  | refs -> Alcotest.failf "expected four refs, got %d" (List.length refs)

let test_parse_indirect_and_sparse () =
  let p =
    parse_ok
      {|
program gather
array table sparse nnz 50 1000 elem 8
array idx dense 64
array m dense 64 64
array o dense 64
kernel g
  loop i parallel 64
  load idx [i]
  load table via idx
  load m via idx [i]
  compute flops 1 heavy 2
  store o [i]
end
schedule
  call g
end
|}
  in
  (match List.find (fun (d : Decl.t) -> d.Decl.name = "table") p.Program.arrays with
  | { Decl.kind = Decl.Sparse { nnz = Some 50 }; elem_bytes = 8; _ } -> ()
  | _ -> Alcotest.fail "sparse decl not parsed");
  let kernel = List.hd p.Program.kernels in
  let patterns = List.map (fun (_, (r : Ir.array_ref)) -> r.Ir.pattern) (Ir.refs kernel) in
  (match List.nth patterns 1 with
  | Ir.Indirect { index_array = "idx"; offset = [] } -> ()
  | _ -> Alcotest.fail "pure gather not parsed");
  (match List.nth patterns 2 with
  | Ir.Indirect { index_array = "idx"; offset = [ e ] } ->
      Alcotest.(check int) "offset coeff" 1 (Ix.coeff_of e "i")
  | _ -> Alcotest.fail "indexed-row gather not parsed");
  (* heavy ops survive parsing *)
  let summary = Gpp_skeleton.Summary.of_kernel ~decls:p.Program.arrays kernel in
  Helpers.close "heavy" 2.0 summary.Summary.heavy_ops_per_iter

let test_parse_branch_and_repeat () =
  let p =
    parse_ok
      {|
program branching
array a dense 32
array o dense 32
kernel k
  loop i parallel 32
  branch 0.25 uniform {
    load a [i]
  }
  branch 0.5 {
    compute flops 2
  }
  compute flops 1
  store o [i]
end
schedule
  repeat 3 {
    call k
    call k
  }
end
|}
  in
  Alcotest.(check int) "schedule expands" 6 (Program.invocation_count p);
  let kernel = List.hd p.Program.kernels in
  match kernel.Ir.body with
  | [ Ir.Branch { probability = 0.25; divergent = false; _ };
      Ir.Branch { probability = 0.5; divergent = true; _ }; _; _ ] ->
      ()
  | _ -> Alcotest.fail "branches not parsed as expected"

let test_parse_agrees_with_builder () =
  (* The parsed program and the programmatically built one agree on the
     analysis results that matter. *)
  let parsed = parse_ok minimal_source in
  let built =
    let arrays = [ Decl.dense "a" ~dims:[ 128 ]; Decl.dense "b" ~dims:[ 128 ] ] in
    let kernel =
      Ir.kernel "copy"
        ~loops:[ Ir.loop "i" ~extent:128 ]
        ~body:[ Ir.load "a" [ Ix.var "i" ]; Ir.compute 1.0; Ir.store "b" [ Ix.var "i" ] ]
    in
    Program.create ~name:"mini" ~arrays ~kernels:[ kernel ] ~schedule:[ Program.Call "copy" ] ()
  in
  let plan p = Gpp_dataflow.Analyzer.analyze p in
  Alcotest.(check int) "same uploads"
    (Gpp_dataflow.Analyzer.input_bytes (plan built))
    (Gpp_dataflow.Analyzer.input_bytes (plan parsed));
  Alcotest.(check int) "same downloads"
    (Gpp_dataflow.Analyzer.output_bytes (plan built))
    (Gpp_dataflow.Analyzer.output_bytes (plan parsed))

let test_parse_errors_carry_lines () =
  Helpers.check_contains "unknown statement" ~needle:"line 8"
    (parse_err
       {|
program bad
array a dense 8
kernel k
  loop i parallel 8
  load a [i]
  compute flops 1
  explode
end
schedule
  call k
end
|});
  Helpers.check_contains "missing program" ~needle:"program"
    (parse_err "schedule\ncall x\nend\n");
  Helpers.check_contains "missing schedule" ~needle:"schedule"
    (parse_err "program p\narray a dense 4\nkernel k\nloop i parallel 4\ncompute flops 1\nend\n");
  Helpers.check_contains "bad loop kind" ~needle:"parallel or serial"
    (parse_err
       "program p\narray a dense 4\nkernel k\nloop i sideways 4\ncompute flops 1\nend\nschedule\ncall k\nend\n");
  (* Validation failures also surface (undeclared array). *)
  Helpers.check_contains "validation runs" ~needle:"undeclared"
    (parse_err
       "program p\narray a dense 4\nkernel k\nloop i parallel 4\nload ghost [i]\nend\nschedule\ncall k\nend\n")

let test_printer_round_trips_all_workloads () =
  (* Printing any bundled workload and re-parsing it yields a program
     with identical structure and identical analysis results. *)
  List.iter
    (fun (inst : Gpp_workloads.Registry.instance) ->
      let original = inst.Gpp_workloads.Registry.program 2 in
      let key = Gpp_workloads.Registry.key inst in
      let reparsed =
        Helpers.check_ok key (Gpp_skeleton.Parser.parse (Gpp_skeleton.Printer.to_skel original))
      in
      Alcotest.(check string) (key ^ " name") original.Program.name reparsed.Program.name;
      Alcotest.(check (list string))
        (key ^ " schedule")
        (Program.flatten_schedule original)
        (Program.flatten_schedule reparsed);
      Alcotest.(check (list string))
        (key ^ " temporaries")
        original.Program.temporaries reparsed.Program.temporaries;
      (* Transfer analysis agrees byte-for-byte. *)
      let plan p = Gpp_dataflow.Analyzer.analyze p in
      Alcotest.(check int) (key ^ " uploads")
        (Gpp_dataflow.Analyzer.input_bytes (plan original))
        (Gpp_dataflow.Analyzer.input_bytes (plan reparsed));
      Alcotest.(check int) (key ^ " downloads")
        (Gpp_dataflow.Analyzer.output_bytes (plan original))
        (Gpp_dataflow.Analyzer.output_bytes (plan reparsed));
      (* Kernel summaries agree (ops, traffic, divergence). *)
      List.iter2
        (fun (k1 : Ir.kernel) (k2 : Ir.kernel) ->
          let s1 = Summary.of_kernel ~decls:original.Program.arrays k1 in
          let s2 = Summary.of_kernel ~decls:reparsed.Program.arrays k2 in
          Helpers.close (key ^ " flops") s1.Summary.flops_per_iter s2.Summary.flops_per_iter;
          Helpers.close (key ^ " heavy") s1.Summary.heavy_ops_per_iter s2.Summary.heavy_ops_per_iter;
          Helpers.close (key ^ " loads") s1.Summary.loads_per_iter s2.Summary.loads_per_iter;
          Alcotest.(check int) (key ^ " trip") s1.Summary.trip_count s2.Summary.trip_count)
        original.Program.kernels reparsed.Program.kernels)
    Gpp_workloads.Registry.all

let test_expr_print_parse_round_trip =
  let expr_gen =
    QCheck2.Gen.(
      let* ci = int_range (-5) 5 in
      let* cj = int_range (-5) 5 in
      let* c = int_range (-100) 100 in
      return (Ix.offset (Ix.add (Ix.var ~coeff:ci "i") (Ix.var ~coeff:cj "j")) c))
  in
  Helpers.qtest "printed expressions re-parse to equal expressions" expr_gen (fun e ->
      let text = Gpp_skeleton.Printer.expr_to_skel e in
      (* Reuse the statement parser by wrapping in a load. *)
      let source =
        Printf.sprintf
          "program t\narray a dense 64 64\nkernel k\nloop i parallel 8\nloop j parallel 8\nload a [%s, 0]\ncompute flops 1\nend\nschedule\ncall k\nend\n"
          text
      in
      match Gpp_skeleton.Parser.parse source with
      | Error _ -> false
      | Ok p -> (
          let k = List.hd p.Program.kernels in
          match Ir.refs k with
          | (_, { Ir.pattern = Ir.Affine [ parsed; _ ]; _ }) :: _ -> Ix.equal parsed e
          | _ -> false))

let test_parse_file_missing () =
  match Gpp_skeleton.Parser.parse_file "/nonexistent/skeleton.skel" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file"

let () =
  Alcotest.run "gpp_skeleton"
    [
      ( "index_expr",
        [
          test_eval_add_homomorphism;
          test_eval_scale;
          test_range_contains_eval;
          Alcotest.test_case "accessors" `Quick test_expr_basics;
          Alcotest.test_case "cancellation" `Quick test_expr_cancellation;
          Alcotest.test_case "pretty-printing" `Quick test_expr_pp;
        ] );
      ("decl", [ Alcotest.test_case "basics" `Quick test_decl_basics ]);
      ( "kernel",
        [
          Alcotest.test_case "counts" `Quick test_kernel_counts;
          Alcotest.test_case "fold weights" `Quick test_fold_refs_weights;
          Alcotest.test_case "validation" `Quick test_kernel_validation;
        ] );
      ( "program",
        [
          Alcotest.test_case "flatten" `Quick test_program_flatten;
          Alcotest.test_case "repeat" `Quick test_program_repeat;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "lookup" `Quick test_program_lookup;
        ] );
      ( "summary",
        [
          Alcotest.test_case "aggregates" `Quick test_summary_aggregates;
          Alcotest.test_case "indirect flag" `Quick test_summary_indirect_flag;
          Alcotest.test_case "pure compute" `Quick test_summary_pure_compute;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal program" `Quick test_parse_minimal;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "indirect and sparse" `Quick test_parse_indirect_and_sparse;
          Alcotest.test_case "branch and repeat" `Quick test_parse_branch_and_repeat;
          Alcotest.test_case "agrees with builder" `Quick test_parse_agrees_with_builder;
          Alcotest.test_case "errors carry lines" `Quick test_parse_errors_carry_lines;
          Alcotest.test_case "printer round trips" `Quick test_printer_round_trips_all_workloads;
          test_expr_print_parse_round_trip;
          Alcotest.test_case "missing file" `Quick test_parse_file_missing;
        ] );
    ]
