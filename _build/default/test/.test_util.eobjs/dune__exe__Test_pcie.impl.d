test/test_pcie.ml: Alcotest Float Gpp_arch Gpp_pcie Gpp_util Helpers List Printf
