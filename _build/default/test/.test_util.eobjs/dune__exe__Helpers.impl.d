test/helpers.ml: Alcotest Float Gpp_skeleton QCheck2 QCheck_alcotest String
