test/test_model.ml: Alcotest Gpp_arch Gpp_model Helpers
