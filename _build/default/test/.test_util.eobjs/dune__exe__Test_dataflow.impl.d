test/test_dataflow.ml: Alcotest Gpp_dataflow Gpp_skeleton Gpp_workloads Helpers List Printf QCheck2
