test/test_brs.mli:
