test/test_pcie.mli:
