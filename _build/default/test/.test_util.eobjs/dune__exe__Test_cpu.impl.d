test/test_cpu.ml: Alcotest Float Gpp_arch Gpp_cpu Gpp_skeleton Gpp_workloads Helpers List
