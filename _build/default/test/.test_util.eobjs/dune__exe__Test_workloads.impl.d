test/test_workloads.ml: Alcotest Array Float Gpp_skeleton Gpp_util Gpp_workloads Helpers List Printf
