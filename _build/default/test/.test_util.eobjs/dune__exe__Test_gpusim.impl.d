test/test_gpusim.ml: Alcotest Float Gpp_arch Gpp_gpusim Gpp_model Gpp_util Helpers List String
