test/test_integration.ml: Alcotest Gpp_arch Gpp_core Gpp_dataflow Gpp_skeleton Gpp_util Gpp_workloads Helpers Lazy List Printf
