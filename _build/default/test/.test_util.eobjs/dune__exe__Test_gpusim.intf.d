test/test_gpusim.mli:
