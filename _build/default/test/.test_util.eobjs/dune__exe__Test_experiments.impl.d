test/test_experiments.ml: Alcotest Filename Float Gpp_core Gpp_experiments Gpp_util Helpers Lazy List Printf String Sys
