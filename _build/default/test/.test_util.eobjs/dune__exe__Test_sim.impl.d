test/test_sim.ml: Alcotest Float Gpp_sim Helpers List Option QCheck2
