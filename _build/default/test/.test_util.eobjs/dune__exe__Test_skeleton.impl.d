test/test_skeleton.ml: Alcotest Float Gpp_dataflow Gpp_skeleton Gpp_workloads Helpers List Printf QCheck2
