test/test_arch.mli:
