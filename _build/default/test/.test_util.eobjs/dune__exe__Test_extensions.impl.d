test/test_extensions.ml: Alcotest Float Gpp_arch Gpp_core Gpp_experiments Gpp_model Gpp_pcie Gpp_skeleton Gpp_transform Gpp_util Gpp_workloads Helpers Lazy List Option Printf
