test/test_brs.ml: Alcotest Gpp_brs Gpp_skeleton Helpers List QCheck2
