test/test_transform.ml: Alcotest Float Gpp_arch Gpp_model Gpp_skeleton Gpp_transform Gpp_workloads Helpers List
