test/test_util.ml: Alcotest Float Gpp_util Helpers List QCheck2 String
