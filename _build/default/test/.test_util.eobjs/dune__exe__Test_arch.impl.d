test/test_arch.ml: Alcotest Gpp_arch Helpers List
