test/test_core.ml: Alcotest Float Gpp_arch Gpp_core Gpp_dataflow Gpp_pcie Gpp_skeleton Gpp_workloads Helpers Lazy List
