(* Iterative stencils: when does the GPU start paying off?

   HotSpot transfers a fixed amount of data no matter how many time
   steps it runs (inputs before the first step, the result after the
   last), so the transfer overhead amortizes as iterations grow.  This
   example sweeps the iteration count, finds the break-even point where
   the GPU overtakes the CPU, and shows how badly a kernel-only
   projection misjudges short runs — the story of the paper's
   Figure 10.

   Run with:  dune exec examples/stencil_iterations.exe *)

let () =
  let machine = Gpp_arch.Machine.argonne_node in
  let session = Gpp_core.Grophecy.init machine in
  let n = 1024 in
  let program = Gpp_workloads.Hotspot.program ~n () in
  let report =
    match Gpp_core.Grophecy.analyze session program with
    | Ok r -> r
    | Error e -> failwith (Gpp_core.Error.to_string e)
  in
  Format.printf "HotSpot %dx%d on %s@.@." n n machine.Gpp_arch.Machine.name;
  Format.printf "fixed transfer cost: %a (in: temperature + power, out: temperature)@.@."
    Gpp_util.Units.pp_time report.measurement.Gpp_core.Measurement.transfer_time;
  Format.printf "%10s %12s %22s %18s@." "iterations" "measured" "pred (kern+transfer)"
    "pred (kernel only)";
  let sweep =
    Gpp_core.Grophecy.iteration_sweep report
      ~iterations:[ 1; 2; 5; 10; 20; 50; 100; 200; 500 ]
  in
  List.iter
    (fun (p : Gpp_core.Evaluation.iteration_point) ->
      let s = p.Gpp_core.Evaluation.speedups in
      Format.printf "%10d %11.2fx %21.2fx %17.2fx@." p.Gpp_core.Evaluation.iterations
        s.Gpp_core.Evaluation.measured s.Gpp_core.Evaluation.with_transfer
        s.Gpp_core.Evaluation.kernel_only)
    sweep;
  (* Break-even: the smallest iteration count with measured speedup > 1. *)
  let rec break_even n =
    if n > 10_000 then None
    else
      let point = List.hd (Gpp_core.Grophecy.iteration_sweep report ~iterations:[ n ]) in
      if point.Gpp_core.Evaluation.speedups.Gpp_core.Evaluation.measured > 1.0 then Some n
      else break_even (n + 1)
  in
  (match break_even 1 with
  | Some 1 -> Format.printf "@.the GPU wins already at a single iteration.@."
  | Some n -> Format.printf "@.the GPU overtakes the CPU after %d iterations.@." n
  | None -> Format.printf "@.the GPU never overtakes the CPU on this workload.@.");
  let limit =
    Gpp_core.Evaluation.limit_speedups report.projection report.measurement
  in
  Format.printf
    "as iterations -> infinity, transfers amortize away and the speedup approaches %.2fx;@.\
     both prediction variants converge there (predicted %.2fx).@.@."
    limit.Gpp_core.Evaluation.measured limit.Gpp_core.Evaluation.with_transfer;

  (* The skeleton models real code: run the reference stencil briefly
     and confirm it behaves like a diffusion (hot spot spreads, peak
     temperature drops). *)
  let module R = Gpp_workloads.Hotspot.Reference in
  let small = 64 in
  let temp =
    R.grid_of ~n:small (fun ~row ~col -> if row = small / 2 && col = small / 2 then 200.0 else 80.0)
  in
  let power = R.grid_of ~n:small (fun ~row:_ ~col:_ -> 0.0) in
  let after = R.simulate ~temp ~power ~iterations:50 in
  let peak g = Array.fold_left Float.max neg_infinity g.R.cells in
  Format.printf "reference check (%dx%d, 50 steps): peak temperature %.1f -> %.1f@." small small
    (peak temp) (peak after)
