(* Would a faster bus change the verdict?

   Stassuij loses on the GPU because the PCIe v1 bus dominates.  A
   natural question for a facility planning hardware purchases: at what
   bus generation does offloading start to pay?  Because the skeleton
   and the analysis are machine-independent, answering this is a loop
   over machine descriptions — no code is ported, no hardware bought.

   Run with:  dune exec examples/bus_upgrade.exe *)

let machine_with_pcie name pcie =
  { Gpp_arch.Machine.argonne_node with Gpp_arch.Machine.name; pcie }

let machines =
  [
    machine_with_pcie "testbed (PCIe v1 x16)" Gpp_arch.Pcie_spec.v1_x16;
    machine_with_pcie "upgraded bus (PCIe v2 x16)" Gpp_arch.Pcie_spec.v2_x16;
    machine_with_pcie "modern bus (PCIe v3 x16)" Gpp_arch.Pcie_spec.v3_x16;
  ]

let verdict speedup = if speedup > 1.0 then "port it" else "keep it on the CPU"

let () =
  let workloads =
    [
      ("stassuij (sparse x dense)", Gpp_workloads.Stassuij.program ());
      ("vecadd 16M", Gpp_workloads.Vecadd.program ~n:(16 * 1024 * 1024));
      ("srad 2048x2048", Gpp_workloads.Srad.program ~n:2048 ());
    ]
  in
  Format.printf
    "Same GPU, same CPU, same code skeletons - only the bus changes.@.\
     (Recalibration happens automatically per machine, as in the paper.)@.@.";
  List.iter
    (fun (label, program) ->
      Format.printf "%s:@." label;
      List.iter
        (fun (machine : Gpp_arch.Machine.t) ->
          let session = Gpp_core.Grophecy.init machine in
          match
            Gpp_core.Projection.project ~pricing:session.Gpp_core.Grophecy.pricing program
          with
          | Error e ->
              Format.printf "  %-28s error: %s@." machine.Gpp_arch.Machine.name
                (Gpp_core.Error.to_string e)
          | Ok projection ->
              let cpu = Gpp_core.Evaluation.cpu_time ~machine program in
              let speedup = cpu /. projection.Gpp_core.Projection.total_time in
              Format.printf
                "  %-28s bus %a  transfer %a  kernel %a  speedup %.2fx -> %s@."
                machine.Gpp_arch.Machine.name Gpp_util.Units.pp_bandwidth
                (Gpp_pcie.Model.bandwidth session.Gpp_core.Grophecy.h2d)
                Gpp_util.Units.pp_time projection.Gpp_core.Projection.transfer_time
                Gpp_util.Units.pp_time projection.Gpp_core.Projection.kernel_time speedup
                (verdict speedup))
        machines;
      Format.printf "@.")
    workloads;
  Format.printf
    "Transfer-bound codes climb with each bus generation, but only cross the@.\
     break-even line once the bus closes most of its gap to the memory system -@.\
     exactly the dynamic the paper's transfer model exists to expose.@."
