(* Bring your own kernel: projecting a brand-new workload.

   The paper's Figure 1 walks through matrix multiplication as the
   pedagogical input to the framework.  This example builds that code
   skeleton from scratch with the public API — array declarations, loop
   nest, access patterns, operation counts — and runs the complete
   GROPHECY++ pipeline on it: transformation search, analytic kernel
   projection, data usage analysis, transfer pricing, and the final
   porting verdict.  This is the workflow a user follows for their own
   CPU code.

   Run with:  dune exec examples/custom_workload.exe *)

module Ir = Gpp_skeleton.Ir
module Ix = Gpp_skeleton.Index_expr
module Decl = Gpp_skeleton.Decl
module Program = Gpp_skeleton.Program

(* C = A * B for n x n single-precision matrices:

     for (i = 0; i < n; i++)        // parallel
       for (j = 0; j < n; j++)      // parallel
         for (k = 0; k < n; k++)    // reduction
           C[i][j] += A[i][k] * B[k][j];

   The skeleton records exactly what the comment says: two parallel
   loops, one serial reduction, three affine array references, and one
   fused multiply-add per innermost iteration. *)
let matmul_program ~n =
  let arrays =
    [ Decl.dense "a" ~dims:[ n; n ]; Decl.dense "b" ~dims:[ n; n ]; Decl.dense "c" ~dims:[ n; n ] ]
  in
  let kernel =
    Ir.kernel "matmul"
      ~loops:
        [
          Ir.loop "i" ~extent:n;
          Ir.loop "j" ~extent:n;
          Ir.loop ~parallel:false "k" ~extent:n;
        ]
      ~body:
        [
          Ir.load "a" [ Ix.var "i"; Ix.var "k" ];
          Ir.load "b" [ Ix.var "k"; Ix.var "j" ];
          Ir.compute ~int_ops:1.0 2.0;
          (* The accumulator lives in a register across the reduction;
             C is touched once per (i, j). *)
          Ir.branch ~divergent:false ~probability:(1.0 /. float_of_int n)
            [ Ir.load "c" [ Ix.var "i"; Ix.var "j" ]; Ir.store "c" [ Ix.var "i"; Ix.var "j" ] ];
        ]
  in
  Program.create ~name:(Printf.sprintf "matmul-%d" n) ~arrays ~kernels:[ kernel ]
    ~schedule:[ Program.Call "matmul" ] ()

let () =
  let n = 1024 in
  let program = matmul_program ~n in
  (* Always validate a hand-built skeleton: it catches unbound loop
     variables, rank mismatches, and schedule typos. *)
  (match Program.validate program with
  | Ok () -> Format.printf "skeleton validated: %s@.@." program.Program.name
  | Error e -> failwith e);

  let machine = Gpp_arch.Machine.argonne_node in
  let session = Gpp_core.Grophecy.init machine in
  match Gpp_core.Grophecy.analyze session program with
  | Error e -> failwith (Gpp_core.Error.to_string e)
  | Ok report ->
      let projection = report.projection in
      Format.printf "what GROPHECY++ decided:@.%a@.@." Gpp_core.Projection.pp projection;
      List.iter
        (fun (kp : Gpp_core.Projection.kernel_projection) ->
          Format.printf "chosen transformation for %s:@.  %a@.@." kp.kernel_name
            Gpp_model.Characteristics.pp
            kp.candidate.Gpp_transform.Explore.characteristics)
        projection.Gpp_core.Projection.kernels;
      Format.printf "transfer plan from the BRS dataflow analysis:@.%a@.@."
        Gpp_dataflow.Analyzer.pp_plan projection.Gpp_core.Projection.plan;
      let s = report.speedups in
      Format.printf
        "verdict for %dx%d matmul: kernel-only %.1fx, end-to-end %.2fx (measured %.2fx)@." n n
        s.Gpp_core.Evaluation.kernel_only s.Gpp_core.Evaluation.with_transfer
        s.Gpp_core.Evaluation.measured;
      if s.Gpp_core.Evaluation.with_transfer > 1.5 then
        Format.printf
          "matmul reuses every transferred element n times, so unlike vector addition@.\
           the transfer cost amortizes and the port is worthwhile.@."
