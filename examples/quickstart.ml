(* Quickstart: the paper's vector-addition argument (Section II-B).

   Vector addition is extremely data parallel and bandwidth bound, so
   comparing memory bandwidths suggests the GPU should win by the DRAM
   bandwidth ratio.  But both inputs must cross the PCIe bus, and the
   result must come back — and the bus is an order of magnitude slower
   than either memory system.  GROPHECY++ makes both halves of that
   argument quantitative from the code skeleton alone.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The machine of the paper's Section II-B example: Xeon E5645 and
     Quadro FX 5600, whose memory bandwidths (32 vs 77 GB/s) suggest a
     ~2.4x kernel win for the GPU. *)
  let machine = Gpp_arch.Machine.section2b_node in
  Format.printf "target machine:@.  %a@.@." Gpp_arch.Machine.pp machine;

  (* Step 1: the framework calibrates its PCIe model automatically from
     two measurements on the (simulated) machine. *)
  let session = Gpp_core.Grophecy.init machine in
  Format.printf "calibrated transfer models:@.  %a@.  %a@.@." Gpp_pcie.Model.pp
    session.Gpp_core.Grophecy.h2d Gpp_pcie.Model.pp session.Gpp_core.Grophecy.d2h;

  (* Step 2: describe the computation as a code skeleton and analyze. *)
  let n = 16 * 1024 * 1024 in
  let program = Gpp_workloads.Vecadd.program ~n in
  (match Gpp_core.Grophecy.analyze session program with
  | Error e -> failwith (Gpp_core.Error.to_string e)
  | Ok report ->
      let ms t = Gpp_util.Units.ms_of_seconds t in
      Format.printf "adding two vectors of %d floats:@." n;
      Format.printf "  CPU time:                     %7.2f ms@." (ms report.cpu_time);
      Format.printf "  GPU kernel time (predicted):  %7.2f ms@."
        (ms report.projection.Gpp_core.Projection.kernel_time);
      Format.printf "  data transfer time (predicted): %5.2f ms  (two vectors in, one out)@."
        (ms report.projection.Gpp_core.Projection.transfer_time);
      Format.printf "  kernel-only speedup:          %7.2fx  <- the naive argument (paper: ~2.4x)@."
        report.speedups.Gpp_core.Evaluation.kernel_only;
      Format.printf
        "  end-to-end speedup:           %7.2fx  <- the real outcome (paper: ~0.1x)@.@."
        report.speedups.Gpp_core.Evaluation.with_transfer;
      if report.speedups.Gpp_core.Evaluation.with_transfer < 1.0 then
        Format.printf
          "the kernel alone is faster on the GPU, but moving the data costs more than@.\
           it saves: porting vector addition would make the program slower overall.@.");

  (* Step 3: the skeleton corresponds to real code — run the reference
     implementation to show what was being modeled. *)
  let a = Array.init 8 float_of_int in
  let b = Array.init 8 (fun i -> float_of_int (10 * i)) in
  let c = Gpp_workloads.Vecadd.Reference.run a b in
  Format.printf "@.reference check: c.(3) = %g (expected 33)@." c.(3)
