(* Should this sparse solver kernel be ported?  The Stassuij story.

   Stassuij (the core of Green's Function Monte Carlo) multiplies a
   small sparse real matrix with a large dense complex matrix.  Judged
   by kernel time alone the GPU looks mildly attractive; judged end to
   end, moving the dense matrices across the bus turns the port into a
   slowdown.  GROPHECY++ catches this *before* anyone writes CUDA code
   (paper Section V-B.4).

   Run with:  dune exec examples/sparse_offload.exe *)

let () =
  let machine = Gpp_arch.Machine.argonne_node in
  let session = Gpp_core.Grophecy.init machine in
  let program = Gpp_workloads.Stassuij.program () in
  let report =
    match Gpp_core.Grophecy.analyze session program with
    | Ok r -> r
    | Error e -> failwith (Gpp_core.Error.to_string e)
  in
  Format.printf "Stassuij: 132x132 sparse (CSR) x 132x2048 dense complex@.@.";
  Format.printf "what the data usage analyzer decided to transfer:@.%a@.@."
    Gpp_dataflow.Analyzer.pp_plan report.projection.Gpp_core.Projection.plan;
  let s = report.speedups in
  Format.printf "kernel-only projection:    %.2fx  -> \"port it\"@."
    s.Gpp_core.Evaluation.kernel_only;
  Format.printf "transfer-aware projection: %.2fx  -> \"do not port it\"@."
    s.Gpp_core.Evaluation.with_transfer;
  Format.printf "measured outcome:          %.2fx  -> the transfer-aware call was right@.@."
    s.Gpp_core.Evaluation.measured;
  Format.printf
    "(paper: 1.10x predicted from the kernel alone, 0.39x actual, 0.38x predicted@.\
    \ once the transfer model is included)@.@.";

  (* The computation itself, verified: sparse-times-dense agrees with a
     naive dense reference. *)
  let module R = Gpp_workloads.Stassuij.Reference in
  let a = R.random_csr ~rows:132 ~cols:132 ~density:0.1 () in
  let x = R.random_complex ~rows:132 ~cols:64 () in
  let fast = R.multiply a x in
  let slow = R.dense_multiply a x in
  Format.printf "reference check: CSR multiply vs dense multiply differ by %.2e (should be ~0)@."
    (R.max_abs_diff fast slow);
  let nnz = Array.length a.R.values in
  Format.printf "sparse operator: %d stored entries of %d slots (%.1f%% dense)@." nnz (132 * 132)
    (100.0 *. float_of_int nnz /. float_of_int (132 * 132))
